//! The trial harness of the security evaluation.
//!
//! Each vulnerability benchmark is run 500 times with the victim's secret
//! address mapped to the tested block and 500 times not mapped
//! (Section 5.3: "24 vulnerability types × 1,000 simulations = 24,000
//! runs"). Every trial uses a fresh machine — fresh TLB contents and a
//! fresh Random Fill Engine seed — and observes the final step through the
//! TLB-miss counter. The counts of slow trials give the empirical
//! probabilities `p1*` and `p2*` and the channel capacity `C*`.

use std::num::NonZeroUsize;

use sectlb_model::state::State;
use sectlb_model::Vulnerability;
use sectlb_sim::machine::{Machine, MachineBuilder, TlbDesign};
use sectlb_sim::os::OsError;
use sectlb_tlb::config::TlbConfig;
use sectlb_tlb::RandomFillEviction;

use crate::capacity::binary_channel_capacity;
use crate::generate::{generate_program, ATTACKER_ASID, VICTIM_ASID};
use crate::oracle::OracleConfig;
use crate::spec::{BenchmarkSpec, Placement};

/// Parameters of a measurement campaign.
#[derive(Debug, Clone, Copy)]
pub struct TrialSettings {
    /// Trials per placement (the paper uses 500).
    pub trials: u32,
    /// TLB geometry (the paper's 8-way 32-entry security setup).
    pub config: TlbConfig,
    /// Base seed; each trial derives its own RFE seed from it.
    pub base_seed: u64,
    /// RF random-fill eviction policy (the insecure `LruWay` variant is
    /// only used by the `ablation_rf` study).
    pub rf_eviction: RandomFillEviction,
    /// Worker threads for the campaign. `None` runs the legacy serial
    /// path; `Some(n)` shards trials across `n` scoped threads through
    /// [`crate::parallel`]. Results are bitwise identical either way:
    /// every trial's seed depends only on
    /// `(base_seed, vulnerability, design, placement, trial index)`.
    pub workers: Option<NonZeroUsize>,
    /// Shadow-oracle guardrails (`--oracle[=RATE]`,
    /// `--inject-corruption[=PM]`). `None` leaves the machines at their
    /// build-profile default and never installs a reporting context, so
    /// campaign output is unchanged. Whether a given trial is sampled or
    /// corrupted is a pure function of its seed, preserving the
    /// determinism contract.
    pub oracle: Option<OracleConfig>,
}

impl Default for TrialSettings {
    fn default() -> TrialSettings {
        TrialSettings {
            trials: 500,
            config: TlbConfig::security_eval(),
            base_seed: 0x7ab1e4,
            rf_eviction: RandomFillEviction::RandomWay,
            workers: None,
            oracle: None,
        }
    }
}

/// One round of the splitmix64 output function (Steele–Lea–Flood); the
/// workhorse of the per-trial seed derivation.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stable numeric code for a vulnerability: the three pattern states'
/// positions in [`State::ALL`] as three base-10 digits. Independent of
/// hasher internals and of the row's position in any particular table.
pub fn vulnerability_code(v: &Vulnerability) -> u64 {
    let idx = |s: State| State::ALL.iter().position(|&t| t == s).expect("in ALL") as u64;
    idx(v.pattern.s1) * 100 + idx(v.pattern.s2) * 10 + idx(v.pattern.s3)
}

fn design_code(design: TlbDesign) -> u64 {
    // Position in EXTENDED: a stable append-only list, so the codes of
    // the paper's three designs (0..=2) — and with them every pinned
    // measurement — never move.
    TlbDesign::EXTENDED
        .iter()
        .position(|&d| d == design)
        .expect("in EXTENDED") as u64
}

fn placement_code(placement: Placement) -> u64 {
    match placement {
        Placement::Mapped => 0,
        Placement::NotMapped => 1,
    }
}

/// Derives the RFE seed of one trial from the campaign's base seed and
/// the trial's full coordinates, by chaining [`splitmix64`] over each
/// coordinate.
///
/// This is the determinism contract of the whole campaign engine: the
/// seed depends on *what* the trial is, never on *when* or *where* it
/// runs, so any sharding of the trial space — including the serial
/// degenerate case — produces bitwise-identical measurements.
pub fn derive_trial_seed(
    base_seed: u64,
    vulnerability: &Vulnerability,
    design: TlbDesign,
    placement: Placement,
    trial: u32,
) -> u64 {
    let mut s = splitmix64(base_seed);
    for coordinate in [
        vulnerability_code(vulnerability),
        design_code(design),
        placement_code(placement),
        u64::from(trial),
    ] {
        s = splitmix64(s ^ coordinate);
    }
    s
}

/// The measured outcome for one vulnerability on one TLB design — one cell
/// group of Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Trials per placement.
    pub trials: u32,
    /// Slow (miss-observed) trials with the secret mapped (`n_{M,M}`).
    pub n_mapped_miss: u32,
    /// Slow trials with the secret not mapped (`n_{N,M}`).
    pub n_not_mapped_miss: u32,
}

impl Measurement {
    /// Empirical `p1*` — probability of a miss observation when mapped.
    pub fn p1(&self) -> f64 {
        f64::from(self.n_mapped_miss) / f64::from(self.trials)
    }

    /// Empirical `p2*` — probability of a miss observation when not
    /// mapped.
    pub fn p2(&self) -> f64 {
        f64::from(self.n_not_mapped_miss) / f64::from(self.trials)
    }

    /// Empirical channel capacity `C*`.
    pub fn capacity(&self) -> f64 {
        binary_channel_capacity(self.p1(), self.p2())
    }

    /// Whether the design defends this vulnerability, using the paper's
    /// reading of Table 4: a capacity of zero or "about 0".
    pub fn defends(&self, threshold: f64) -> bool {
        self.capacity() <= threshold
    }

    /// The empty measurement — the identity of [`Measurement::merge`].
    pub const ZERO: Measurement = Measurement {
        trials: 0,
        n_mapped_miss: 0,
        n_not_mapped_miss: 0,
    };

    /// Combines two disjoint shards of the same campaign cell.
    ///
    /// The merge is commutative and associative (component-wise sums), so
    /// shards may be aggregated in any order — the property the parallel
    /// engine relies on for thread-count-independent results.
    #[must_use]
    pub fn merge(self, other: Measurement) -> Measurement {
        Measurement {
            trials: self.trials + other.trials,
            n_mapped_miss: self.n_mapped_miss + other.n_mapped_miss,
            n_not_mapped_miss: self.n_not_mapped_miss + other.n_not_mapped_miss,
        }
    }
}

/// A machine-setup failure, annotated with the campaign cell that hit it.
///
/// Wraps the simulator's [`OsError`] (map/translate failures) with the
/// vulnerability, design, and setup stage, so a failure deep inside
/// `sectlb_sim` surfaces as "which cell of which table broke and why"
/// instead of a bare `expect` panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetupError {
    /// The vulnerability whose benchmark was being set up.
    pub vulnerability: String,
    /// The TLB design under test.
    pub design: TlbDesign,
    /// The setup stage that failed (e.g. `"map conflict region"`).
    pub stage: &'static str,
    /// The underlying OS/page-table error.
    pub source: OsError,
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "machine setup failed for cell [{} on {} TLB] while trying to {}: {}",
            self.vulnerability, self.design, self.stage, self.source
        )
    }
}

impl std::error::Error for SetupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Builds the per-trial machine: TLB design + geometry, victim and
/// attacker processes, their mapped regions, and the programmed secure
/// region (victim-ASID and `sbase`/`ssize` registers).
///
/// Setup failures (which a fresh machine should never produce, but a
/// customized one from an ablation hook can) are reported with the
/// vulnerability/design cell that hit them instead of panicking.
fn build_machine(
    spec: &BenchmarkSpec,
    design: TlbDesign,
    seed: u64,
    rf_eviction: RandomFillEviction,
    customize: &(dyn Fn(MachineBuilder) -> MachineBuilder + Sync),
) -> Result<Machine, SetupError> {
    let cell_error = |stage: &'static str| {
        let vulnerability = spec.vulnerability.to_string();
        move |source: OsError| SetupError {
            vulnerability,
            design,
            stage,
            source,
        }
    };
    let builder = MachineBuilder::new()
        .design(design)
        .tlb_config(spec.config)
        .seed(seed)
        .rf_eviction(rf_eviction);
    let mut m = customize(builder).build();
    let victim = m.os_mut().create_process();
    let attacker = m.os_mut().create_process();
    debug_assert_eq!(victim, VICTIM_ASID);
    debug_assert_eq!(attacker, ATTACKER_ASID);
    // The victim's secure region (also pre-generates PTEs for the RFE).
    m.protect_victim(victim, spec.region)
        .map_err(cell_error("protect the victim's secure region"))?;
    // Both actors can reach the conflict pages, the in-range page numbers
    // (numerically, in their own address spaces) and their filler page.
    for asid in [victim, attacker] {
        m.os_mut()
            .map_region(asid, spec.dbase, 64)
            .map_err(cell_error("map the conflict region"))?;
        m.os_mut()
            .map_region(asid, spec.region.base, spec.region.pages)
            .ok(); // victim's region is already mapped; attacker's is fresh
        m.os_mut()
            .map_page(asid, spec.filler)
            .map_err(cell_error("map the filler page"))?;
    }
    Ok(m)
}

/// Runs one trial; returns `true` when the timed step was slow (the miss
/// counter advanced).
///
/// When `settings.oracle` arms this trial (sampled by seed), the machine
/// runs with the shadow oracle in lockstep and a reporting context of
/// `tag|vulnerability|design|placement|seed`; a planned corruption (the
/// `--inject-corruption` harness) is scheduled before execution. Unarmed
/// trials build exactly as before.
fn run_trial(
    spec: &BenchmarkSpec,
    design: TlbDesign,
    placement: Placement,
    program: &[sectlb_sim::cpu::Instr],
    seed: u64,
    settings: &TrialSettings,
    customize: &(dyn Fn(MachineBuilder) -> MachineBuilder + Sync),
) -> Result<bool, SetupError> {
    let oracle = settings.oracle.filter(|o| o.armed(seed));
    let arm: &(dyn Fn(MachineBuilder) -> MachineBuilder + Sync) = &|b| {
        let b = customize(b);
        if oracle.is_some() {
            b.oracle(true)
        } else {
            b
        }
    };
    let mut m = build_machine(spec, design, seed, settings.rf_eviction, arm)?;
    if let Some(o) = oracle {
        m.set_oracle_context(format!(
            "{}|{}|{}|{:?}|{:#x}",
            o.tag, spec.vulnerability, design, placement, seed
        ));
        if let Some((op_index, selector, kind)) = o.corruption(seed) {
            m.schedule_corruption(op_index, selector, kind);
        }
    }
    m.run_batch(program);
    let reads = &m.stats().counter_reads;
    assert_eq!(reads.len(), 2, "benchmark reads the counter exactly twice");
    Ok(reads[1] > reads[0])
}

/// Measures one vulnerability on one design.
///
/// Runs serially when `settings.workers` is `None`, and through the
/// sharded [`crate::parallel`] engine otherwise; the two paths produce
/// bitwise-identical measurements.
pub fn run_vulnerability(
    vulnerability: &Vulnerability,
    design: TlbDesign,
    settings: &TrialSettings,
) -> Measurement {
    run_vulnerability_with_builder(vulnerability, design, settings, |b| b)
}

/// [`run_vulnerability`] with a hook customizing the per-trial machine
/// (used by the ablation studies, e.g. to sweep the SP partition split).
pub fn run_vulnerability_with_builder(
    vulnerability: &Vulnerability,
    design: TlbDesign,
    settings: &TrialSettings,
    customize: impl Fn(MachineBuilder) -> MachineBuilder + Sync,
) -> Measurement {
    match settings.workers {
        Some(workers) => {
            let cells = [(*vulnerability, design)];
            crate::parallel::measure_cells(&cells, settings, workers, &customize)
                .0
                .remove(0)
        }
        None => {
            let spec = BenchmarkSpec::build_with_config(vulnerability, design, settings.config);
            run_trial_range(&spec, design, settings, 0..settings.trials, &customize)
        }
    }
}

/// Measures a contiguous range of trial indices for one cell — the shard
/// unit of the parallel engine, also usable directly (the equivalence
/// proptests split campaigns at arbitrary boundaries with it).
///
/// `spec` must be built from the same vulnerability/design/config the
/// seeds are derived for; the result covers `range.len()` trials per
/// placement.
pub fn run_trial_range(
    spec: &BenchmarkSpec,
    design: TlbDesign,
    settings: &TrialSettings,
    range: std::ops::Range<u32>,
    customize: &(dyn Fn(MachineBuilder) -> MachineBuilder + Sync),
) -> Measurement {
    match try_run_trial_range(spec, design, settings, range, customize) {
        Ok(m) => m,
        // The panic message carries the full cell coordinates, so the
        // fault-tolerant engine's catch_unwind surfaces them verbatim in
        // its quarantine report.
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`run_trial_range`]: machine-setup failures are propagated as
/// a typed [`SetupError`] naming the cell instead of panicking.
pub fn try_run_trial_range(
    spec: &BenchmarkSpec,
    design: TlbDesign,
    settings: &TrialSettings,
    range: std::ops::Range<u32>,
    customize: &(dyn Fn(MachineBuilder) -> MachineBuilder + Sync),
) -> Result<Measurement, SetupError> {
    let v = &spec.vulnerability;
    let mut n_mapped_miss = 0;
    let mut n_not_mapped_miss = 0;
    // The benchmark program depends only on (spec, placement), so it is
    // generated once per shard instead of once per trial — the trial loop
    // proper allocates nothing for the op sequence.
    let mapped_program = generate_program(spec, Placement::Mapped);
    let not_mapped_program = generate_program(spec, Placement::NotMapped);
    for t in range.clone() {
        // Cooperative cell-deadline preemption: unwinds with a typed
        // payload the resilient engine reports as TIMEOUT. A no-op unless
        // the engine armed this thread's flag. Sits between trials, so a
        // preemption never splits a trial's batch mid-run.
        crate::supervisor::preempt_point();
        for (placement, program, counter) in [
            (Placement::Mapped, &mapped_program, &mut n_mapped_miss),
            (
                Placement::NotMapped,
                &not_mapped_program,
                &mut n_not_mapped_miss,
            ),
        ] {
            let seed = derive_trial_seed(settings.base_seed, v, design, placement, t);
            if run_trial(spec, design, placement, program, seed, settings, customize)? {
                *counter += 1;
            }
        }
    }
    Ok(Measurement {
        trials: range.len() as u32,
        n_mapped_miss,
        n_not_mapped_miss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sectlb_model::{enumerate_vulnerabilities, Strategy};

    fn settings() -> TrialSettings {
        TrialSettings {
            trials: 60,
            ..TrialSettings::default()
        }
    }

    fn row(strategy: Strategy, s1: &str) -> Vulnerability {
        *enumerate_vulnerabilities()
            .iter()
            .find(|v| v.strategy == strategy && v.pattern.s1.to_string() == s1)
            .expect("row exists")
    }

    #[test]
    fn sa_is_vulnerable_to_prime_probe() {
        let v = row(Strategy::PrimeProbe, "A_d");
        let m = run_vulnerability(&v, TlbDesign::Sa, &settings());
        assert!(m.p1() > 0.95, "p1* = {}", m.p1());
        assert!(m.p2() < 0.05, "p2* = {}", m.p2());
        assert!(m.capacity() > 0.9);
    }

    #[test]
    fn sp_defends_prime_probe() {
        let v = row(Strategy::PrimeProbe, "A_d");
        let m = run_vulnerability(&v, TlbDesign::Sp, &settings());
        assert!(m.defends(0.05), "C* = {}", m.capacity());
    }

    #[test]
    fn rf_defends_prime_probe() {
        let v = row(Strategy::PrimeProbe, "A_d");
        let m = run_vulnerability(&v, TlbDesign::Rf, &settings());
        assert!(m.defends(0.05), "C* = {}", m.capacity());
    }

    #[test]
    fn sa_is_vulnerable_to_internal_collision() {
        let v = row(Strategy::InternalCollision, "A_d");
        let m = run_vulnerability(&v, TlbDesign::Sa, &settings());
        // Hit-based: mapped trials are fast (p1* ~ 0), unmapped slow.
        assert!(m.p1() < 0.05, "p1* = {}", m.p1());
        assert!(m.p2() > 0.95, "p2* = {}", m.p2());
    }

    #[test]
    fn rf_defends_internal_collision_with_two_thirds_miss_rate() {
        let v = row(Strategy::InternalCollision, "A_d");
        let m = run_vulnerability(&v, TlbDesign::Rf, &settings());
        // Table 4: p1* ≈ p2* ≈ 0.67 (1 - 1/sec_range with 3 secure pages).
        assert!((m.p1() - 0.67).abs() < 0.15, "p1* = {}", m.p1());
        assert!((m.p2() - 0.67).abs() < 0.15, "p2* = {}", m.p2());
        assert!(m.defends(0.05), "C* = {}", m.capacity());
    }

    #[test]
    fn all_designs_defend_flush_reload() {
        // The ASID check alone defeats cross-process reloads.
        let v = row(Strategy::FlushReload, "A_d");
        for d in TlbDesign::ALL {
            let m = run_vulnerability(&v, d, &settings());
            assert!(m.p1() > 0.95 && m.p2() > 0.95, "{d}: {m:?}");
            assert!(m.defends(0.05), "{d}");
        }
    }

    #[test]
    fn sp_remains_vulnerable_to_bernstein() {
        let v = row(Strategy::Bernstein, "V_a");
        let m = run_vulnerability(&v, TlbDesign::Sp, &settings());
        assert!(m.capacity() > 0.9, "C* = {}", m.capacity());
    }

    #[test]
    fn temporal_measurements_match_the_closed_form_exactly() {
        // Every FS/FT theory cell is 0/1-deterministic, so simulation must
        // reproduce it exactly — not just within a statistical bound.
        let s = TrialSettings {
            trials: 12,
            ..TrialSettings::default()
        };
        let p = crate::theory::TheoryParams::default();
        for v in enumerate_vulnerabilities() {
            for d in [TlbDesign::Fs, TlbDesign::Ft] {
                let m = run_vulnerability(&v, d, &s);
                let t = crate::theory::paper_theory(&v, d, &p);
                assert_eq!(m.p1(), t.p1, "{v} on {d}: p1* != p1");
                assert_eq!(m.p2(), t.p2, "{v} on {d}: p2* != p2");
            }
        }
    }

    #[test]
    fn ms_measurements_equal_sa_bitwise() {
        // The campaign workloads issue only 4 KiB accesses and MS's base
        // class carries the evaluation geometry, so the split TLB measures
        // identically to SA on every row (neither design consumes the RFE
        // seed, so differing trial seeds cannot perturb this).
        let s = TrialSettings {
            trials: 12,
            ..TrialSettings::default()
        };
        for v in enumerate_vulnerabilities() {
            let sa = run_vulnerability(&v, TlbDesign::Sa, &s);
            let ms = run_vulnerability(&v, TlbDesign::Ms, &s);
            assert_eq!(sa, ms, "{v}: MS diverged from SA");
        }
    }

    #[test]
    fn measurements_are_deterministic_for_a_seed() {
        let v = row(Strategy::PrimeProbe, "A_a");
        let s = settings();
        let a = run_vulnerability(&v, TlbDesign::Rf, &s);
        let b = run_vulnerability(&v, TlbDesign::Rf, &s);
        assert_eq!(a, b);
    }

    #[test]
    fn worker_dispatch_matches_serial_bitwise() {
        let v = row(Strategy::PrimeProbe, "A_a");
        let serial = run_vulnerability(&v, TlbDesign::Rf, &settings());
        for n in [1, 4] {
            let s = TrialSettings {
                workers: NonZeroUsize::new(n),
                ..settings()
            };
            assert_eq!(
                run_vulnerability(&v, TlbDesign::Rf, &s),
                serial,
                "workers={n}"
            );
        }
    }

    #[test]
    fn trial_seeds_are_unique_across_coordinates() {
        use std::collections::HashSet;
        let vulns = enumerate_vulnerabilities();
        let mut seeds = HashSet::new();
        for v in vulns.iter().take(4) {
            for design in TlbDesign::ALL {
                for placement in [Placement::Mapped, Placement::NotMapped] {
                    for trial in 0..50 {
                        seeds.insert(derive_trial_seed(0x7ab1e4, v, design, placement, trial));
                    }
                }
            }
        }
        assert_eq!(seeds.len(), 4 * 3 * 2 * 50, "seed collision");
    }

    #[test]
    fn trial_seeds_move_with_the_base_seed() {
        let v = row(Strategy::PrimeProbe, "A_a");
        let a = derive_trial_seed(1, &v, TlbDesign::Sa, Placement::Mapped, 0);
        let b = derive_trial_seed(2, &v, TlbDesign::Sa, Placement::Mapped, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn merge_is_commutative_and_has_identity() {
        let a = Measurement {
            trials: 10,
            n_mapped_miss: 3,
            n_not_mapped_miss: 7,
        };
        let b = Measurement {
            trials: 5,
            n_mapped_miss: 1,
            n_not_mapped_miss: 0,
        };
        assert_eq!(a.merge(b), b.merge(a));
        assert_eq!(a.merge(Measurement::ZERO), a);
        assert_eq!(a.merge(b).trials, 15);
    }
}
