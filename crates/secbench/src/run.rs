//! The trial harness of the security evaluation.
//!
//! Each vulnerability benchmark is run 500 times with the victim's secret
//! address mapped to the tested block and 500 times not mapped
//! (Section 5.3: "24 vulnerability types × 1,000 simulations = 24,000
//! runs"). Every trial uses a fresh machine — fresh TLB contents and a
//! fresh Random Fill Engine seed — and observes the final step through the
//! TLB-miss counter. The counts of slow trials give the empirical
//! probabilities `p1*` and `p2*` and the channel capacity `C*`.

use sectlb_model::Vulnerability;
use sectlb_sim::machine::{Machine, MachineBuilder, TlbDesign};
use sectlb_tlb::config::TlbConfig;
use sectlb_tlb::RandomFillEviction;

use crate::capacity::binary_channel_capacity;
use crate::generate::{generate_program, ATTACKER_ASID, VICTIM_ASID};
use crate::spec::{BenchmarkSpec, Placement};

/// Parameters of a measurement campaign.
#[derive(Debug, Clone, Copy)]
pub struct TrialSettings {
    /// Trials per placement (the paper uses 500).
    pub trials: u32,
    /// TLB geometry (the paper's 8-way 32-entry security setup).
    pub config: TlbConfig,
    /// Base seed; each trial derives its own RFE seed from it.
    pub base_seed: u64,
    /// RF random-fill eviction policy (the insecure `LruWay` variant is
    /// only used by the `ablation_rf` study).
    pub rf_eviction: RandomFillEviction,
}

impl Default for TrialSettings {
    fn default() -> TrialSettings {
        TrialSettings {
            trials: 500,
            config: TlbConfig::security_eval(),
            base_seed: 0x7ab1e4,
            rf_eviction: RandomFillEviction::RandomWay,
        }
    }
}

/// The measured outcome for one vulnerability on one TLB design — one cell
/// group of Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Trials per placement.
    pub trials: u32,
    /// Slow (miss-observed) trials with the secret mapped (`n_{M,M}`).
    pub n_mapped_miss: u32,
    /// Slow trials with the secret not mapped (`n_{N,M}`).
    pub n_not_mapped_miss: u32,
}

impl Measurement {
    /// Empirical `p1*` — probability of a miss observation when mapped.
    pub fn p1(&self) -> f64 {
        f64::from(self.n_mapped_miss) / f64::from(self.trials)
    }

    /// Empirical `p2*` — probability of a miss observation when not
    /// mapped.
    pub fn p2(&self) -> f64 {
        f64::from(self.n_not_mapped_miss) / f64::from(self.trials)
    }

    /// Empirical channel capacity `C*`.
    pub fn capacity(&self) -> f64 {
        binary_channel_capacity(self.p1(), self.p2())
    }

    /// Whether the design defends this vulnerability, using the paper's
    /// reading of Table 4: a capacity of zero or "about 0".
    pub fn defends(&self, threshold: f64) -> bool {
        self.capacity() <= threshold
    }
}

/// Builds the per-trial machine: TLB design + geometry, victim and
/// attacker processes, their mapped regions, and the programmed secure
/// region (victim-ASID and `sbase`/`ssize` registers).
fn build_machine(
    spec: &BenchmarkSpec,
    design: TlbDesign,
    seed: u64,
    rf_eviction: RandomFillEviction,
    customize: &dyn Fn(MachineBuilder) -> MachineBuilder,
) -> Machine {
    let builder = MachineBuilder::new()
        .design(design)
        .tlb_config(spec.config)
        .seed(seed)
        .rf_eviction(rf_eviction);
    let mut m = customize(builder).build();
    let victim = m.os_mut().create_process();
    let attacker = m.os_mut().create_process();
    debug_assert_eq!(victim, VICTIM_ASID);
    debug_assert_eq!(attacker, ATTACKER_ASID);
    // The victim's secure region (also pre-generates PTEs for the RFE).
    m.protect_victim(victim, spec.region)
        .expect("fresh machine cannot fail to map");
    // Both actors can reach the conflict pages, the in-range page numbers
    // (numerically, in their own address spaces) and their filler page.
    for asid in [victim, attacker] {
        m.os_mut()
            .map_region(asid, spec.dbase, 64)
            .expect("fresh machine cannot fail to map");
        m.os_mut()
            .map_region(asid, spec.region.base, spec.region.pages)
            .ok(); // victim's region is already mapped; attacker's is fresh
        m.os_mut()
            .map_page(asid, spec.filler)
            .expect("fresh machine cannot fail to map");
    }
    m
}

/// Runs one trial; returns `true` when the timed step was slow (the miss
/// counter advanced).
fn run_trial(
    spec: &BenchmarkSpec,
    design: TlbDesign,
    placement: Placement,
    seed: u64,
    rf_eviction: RandomFillEviction,
    customize: &dyn Fn(MachineBuilder) -> MachineBuilder,
) -> bool {
    let mut m = build_machine(spec, design, seed, rf_eviction, customize);
    let program = generate_program(spec, placement);
    m.run(&program);
    let reads = &m.stats().counter_reads;
    assert_eq!(reads.len(), 2, "benchmark reads the counter exactly twice");
    reads[1] > reads[0]
}

/// Measures one vulnerability on one design.
pub fn run_vulnerability(
    vulnerability: &Vulnerability,
    design: TlbDesign,
    settings: &TrialSettings,
) -> Measurement {
    run_vulnerability_with_builder(vulnerability, design, settings, |b| b)
}

/// [`run_vulnerability`] with a hook customizing the per-trial machine
/// (used by the ablation studies, e.g. to sweep the SP partition split).
pub fn run_vulnerability_with_builder(
    vulnerability: &Vulnerability,
    design: TlbDesign,
    settings: &TrialSettings,
    customize: impl Fn(MachineBuilder) -> MachineBuilder,
) -> Measurement {
    let spec = BenchmarkSpec::build_with_config(vulnerability, design, settings.config);
    let mut n_mapped_miss = 0;
    let mut n_not_mapped_miss = 0;
    for t in 0..settings.trials {
        // Distinct, deterministic seeds per (row, design, trial, placement).
        let tag = (u64::from(t) << 8) ^ settings.base_seed ^ row_tag(vulnerability, design);
        if run_trial(
            &spec,
            design,
            Placement::Mapped,
            tag,
            settings.rf_eviction,
            &customize,
        ) {
            n_mapped_miss += 1;
        }
        if run_trial(
            &spec,
            design,
            Placement::NotMapped,
            tag.wrapping_add(1),
            settings.rf_eviction,
            &customize,
        ) {
            n_not_mapped_miss += 1;
        }
    }
    Measurement {
        trials: settings.trials,
        n_mapped_miss,
        n_not_mapped_miss,
    }
}

fn row_tag(v: &Vulnerability, design: TlbDesign) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    v.pattern.hash(&mut h);
    design.name().hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sectlb_model::{enumerate_vulnerabilities, Strategy};

    fn settings() -> TrialSettings {
        TrialSettings {
            trials: 60,
            ..TrialSettings::default()
        }
    }

    fn row(strategy: Strategy, s1: &str) -> Vulnerability {
        *enumerate_vulnerabilities()
            .iter()
            .find(|v| v.strategy == strategy && v.pattern.s1.to_string() == s1)
            .expect("row exists")
    }

    #[test]
    fn sa_is_vulnerable_to_prime_probe() {
        let v = row(Strategy::PrimeProbe, "A_d");
        let m = run_vulnerability(&v, TlbDesign::Sa, &settings());
        assert!(m.p1() > 0.95, "p1* = {}", m.p1());
        assert!(m.p2() < 0.05, "p2* = {}", m.p2());
        assert!(m.capacity() > 0.9);
    }

    #[test]
    fn sp_defends_prime_probe() {
        let v = row(Strategy::PrimeProbe, "A_d");
        let m = run_vulnerability(&v, TlbDesign::Sp, &settings());
        assert!(m.defends(0.05), "C* = {}", m.capacity());
    }

    #[test]
    fn rf_defends_prime_probe() {
        let v = row(Strategy::PrimeProbe, "A_d");
        let m = run_vulnerability(&v, TlbDesign::Rf, &settings());
        assert!(m.defends(0.05), "C* = {}", m.capacity());
    }

    #[test]
    fn sa_is_vulnerable_to_internal_collision() {
        let v = row(Strategy::InternalCollision, "A_d");
        let m = run_vulnerability(&v, TlbDesign::Sa, &settings());
        // Hit-based: mapped trials are fast (p1* ~ 0), unmapped slow.
        assert!(m.p1() < 0.05, "p1* = {}", m.p1());
        assert!(m.p2() > 0.95, "p2* = {}", m.p2());
    }

    #[test]
    fn rf_defends_internal_collision_with_two_thirds_miss_rate() {
        let v = row(Strategy::InternalCollision, "A_d");
        let m = run_vulnerability(&v, TlbDesign::Rf, &settings());
        // Table 4: p1* ≈ p2* ≈ 0.67 (1 - 1/sec_range with 3 secure pages).
        assert!((m.p1() - 0.67).abs() < 0.15, "p1* = {}", m.p1());
        assert!((m.p2() - 0.67).abs() < 0.15, "p2* = {}", m.p2());
        assert!(m.defends(0.05), "C* = {}", m.capacity());
    }

    #[test]
    fn all_designs_defend_flush_reload() {
        // The ASID check alone defeats cross-process reloads.
        let v = row(Strategy::FlushReload, "A_d");
        for d in TlbDesign::ALL {
            let m = run_vulnerability(&v, d, &settings());
            assert!(m.p1() > 0.95 && m.p2() > 0.95, "{d}: {m:?}");
            assert!(m.defends(0.05), "{d}");
        }
    }

    #[test]
    fn sp_remains_vulnerable_to_bernstein() {
        let v = row(Strategy::Bernstein, "V_a");
        let m = run_vulnerability(&v, TlbDesign::Sp, &settings());
        assert!(m.capacity() > 0.9, "C* = {}", m.capacity());
    }

    #[test]
    fn measurements_are_deterministic_for_a_seed() {
        let v = row(Strategy::PrimeProbe, "A_a");
        let s = settings();
        let a = run_vulnerability(&v, TlbDesign::Rf, &s);
        let b = run_vulnerability(&v, TlbDesign::Rf, &s);
        assert_eq!(a, b);
    }
}
