//! Crash-safe campaign checkpoints.
//!
//! A long campaign (tens of thousands of trials) should survive a killed
//! process: the fault-tolerant engine in [`crate::resilience`]
//! periodically serializes every completed shard's result — together with
//! a fingerprint of the campaign's settings and the task count — and a
//! `--resume` run skips the recorded shards. Because every trial's seed
//! is a pure function of its coordinates (see
//! [`crate::run::derive_trial_seed`]), a resumed campaign is bitwise
//! identical to an uninterrupted one.
//!
//! # File format
//!
//! A checkpoint is a short line-oriented text file, written with a
//! temp-file + atomic-rename so a kill mid-write can never corrupt an
//! existing checkpoint:
//!
//! ```text
//! secbench-checkpoint v1
//! settings 00c0ffee00c0ffee
//! tasks 72
//! elapsed 45000000000
//! done 0 25 3 22
//! done 5 25 24 1
//! ```
//!
//! `settings` is the campaign fingerprint ([`settings_fingerprint`]
//! chained with driver-specific coordinates); a mismatch on load is a
//! hard error — resuming a different campaign from a stale file would
//! silently corrupt results. `elapsed` is the campaign wall-clock (in
//! nanoseconds) consumed up to the flush, across every run in the resume
//! chain — it is what keeps `--deadline` honest across `--resume`
//! (files written before this line existed load as zero consumed). Each
//! `done` line is a completed task index followed by its
//! [`Record`]-encoded result.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::run::{splitmix64, Measurement, TrialSettings};

/// The version tag in the checkpoint header.
const MAGIC: &str = "secbench-checkpoint v1";

/// A task result that can round-trip through a checkpoint line.
///
/// Encodings must be a single line without newlines and must round-trip
/// **bitwise** (floats are stored as their IEEE-754 bit patterns) — the
/// resume contract promises output identical to an uninterrupted run.
pub trait Record: Sized {
    /// Serializes the result as a single line.
    fn encode(&self) -> String;
    /// Parses a line produced by [`Record::encode`].
    fn decode(line: &str) -> Option<Self>;
}

impl Record for Measurement {
    fn encode(&self) -> String {
        format!(
            "{} {} {}",
            self.trials, self.n_mapped_miss, self.n_not_mapped_miss
        )
    }

    fn decode(line: &str) -> Option<Measurement> {
        let mut parts = line.split_whitespace();
        let trials = parts.next()?.parse().ok()?;
        let n_mapped_miss = parts.next()?.parse().ok()?;
        let n_not_mapped_miss = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Measurement {
            trials,
            n_mapped_miss,
            n_not_mapped_miss,
        })
    }
}

impl Record for u64 {
    fn encode(&self) -> String {
        format!("{self}")
    }

    fn decode(line: &str) -> Option<u64> {
        line.trim().parse().ok()
    }
}

impl Record for f64 {
    fn encode(&self) -> String {
        // Bit-exact: the resume contract is *bitwise* identity, which a
        // decimal round-trip cannot guarantee for every value.
        format!("{:016x}", self.to_bits())
    }

    fn decode(line: &str) -> Option<f64> {
        u64::from_str_radix(line.trim(), 16)
            .ok()
            .map(f64::from_bits)
    }
}

impl Record for (f64, f64) {
    fn encode(&self) -> String {
        format!("{} {}", self.0.encode(), self.1.encode())
    }

    fn decode(line: &str) -> Option<(f64, f64)> {
        let mut parts = line.split_whitespace();
        let a = f64::decode(parts.next()?)?;
        let b = f64::decode(parts.next()?)?;
        if parts.next().is_some() {
            return None;
        }
        Some((a, b))
    }
}

impl Record for (u64, u64) {
    fn encode(&self) -> String {
        format!("{} {}", self.0, self.1)
    }

    fn decode(line: &str) -> Option<(u64, u64)> {
        let mut parts = line.split_whitespace();
        let a = parts.next()?.parse().ok()?;
        let b = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some((a, b))
    }
}

impl Record for (f64, f64, f64) {
    fn encode(&self) -> String {
        format!(
            "{} {} {}",
            self.0.encode(),
            self.1.encode(),
            self.2.encode()
        )
    }

    fn decode(line: &str) -> Option<(f64, f64, f64)> {
        let mut parts = line.split_whitespace();
        let a = f64::decode(parts.next()?)?;
        let b = f64::decode(parts.next()?)?;
        let c = f64::decode(parts.next()?)?;
        if parts.next().is_some() {
            return None;
        }
        Some((a, b, c))
    }
}

/// Why a checkpoint could not be written, read, or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file is not a well-formed checkpoint.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The checkpoint was written by a campaign with different settings.
    SettingsMismatch {
        /// The live campaign's fingerprint.
        expected: u64,
        /// The fingerprint recorded in the file.
        found: u64,
    },
    /// The checkpoint records a different number of tasks.
    TaskCountMismatch {
        /// The live campaign's task count.
        expected: usize,
        /// The task count recorded in the file.
        found: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::Malformed { line, reason } => {
                write!(f, "malformed checkpoint (line {line}): {reason}")
            }
            CheckpointError::SettingsMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different campaign: settings fingerprint \
                 {found:016x} in the file, {expected:016x} for this run"
            ),
            CheckpointError::TaskCountMismatch { expected, found } => write!(
                f,
                "checkpoint records {found} tasks but this campaign has {expected}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// How often and where the engine checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (written with temp-file + atomic rename).
    pub path: PathBuf,
    /// Write the file after every `every` newly completed shards (a final
    /// write always happens at run end or interruption).
    pub every: usize,
}

impl CheckpointPolicy {
    /// A policy writing `path` after every 8 completed shards.
    pub fn new(path: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            path: path.into(),
            every: 8,
        }
    }
}

/// An in-memory checkpoint: the campaign identity plus every completed
/// task's encoded result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the campaign settings (see [`settings_fingerprint`]
    /// and [`fingerprint`]).
    pub settings_hash: u64,
    /// Total number of tasks in the campaign.
    pub tasks: usize,
    /// Campaign wall-clock consumed up to this flush, summed across every
    /// run in the resume chain. Deducted from `--deadline` on resume.
    pub consumed: std::time::Duration,
    /// Completed tasks: `(task index, encoded result)`, in completion
    /// order.
    pub done: Vec<(usize, String)>,
}

impl Checkpoint {
    /// An empty checkpoint for a campaign of `tasks` tasks.
    pub fn new(settings_hash: u64, tasks: usize) -> Checkpoint {
        Checkpoint {
            settings_hash,
            tasks,
            consumed: std::time::Duration::ZERO,
            done: Vec::new(),
        }
    }

    /// Records one completed task.
    pub fn record(&mut self, index: usize, result: &impl Record) {
        self.done.push((index, result.encode()));
    }

    /// Errors unless the checkpoint matches the live campaign's identity.
    pub fn validate(&self, settings_hash: u64, tasks: usize) -> Result<(), CheckpointError> {
        if self.settings_hash != settings_hash {
            return Err(CheckpointError::SettingsMismatch {
                expected: settings_hash,
                found: self.settings_hash,
            });
        }
        if self.tasks != tasks {
            return Err(CheckpointError::TaskCountMismatch {
                expected: tasks,
                found: self.tasks,
            });
        }
        Ok(())
    }

    /// Decodes every recorded result, rejecting out-of-range indices and
    /// undecodable payloads.
    pub fn decoded<R: Record>(&self) -> Result<Vec<(usize, R)>, CheckpointError> {
        self.done
            .iter()
            .enumerate()
            .map(|(n, (index, payload))| {
                let malformed = |reason: String| CheckpointError::Malformed {
                    // +5 for the four header lines, 1-based.
                    line: n + 5,
                    reason,
                };
                if *index >= self.tasks {
                    return Err(malformed(format!(
                        "task index {index} out of range (campaign has {} tasks)",
                        self.tasks
                    )));
                }
                let record = R::decode(payload)
                    .ok_or_else(|| malformed(format!("undecodable result {payload:?}")))?;
                Ok((*index, record))
            })
            .collect()
    }

    /// Serializes the checkpoint to its file format.
    pub fn render(&self) -> String {
        let nanos = u64::try_from(self.consumed.as_nanos()).unwrap_or(u64::MAX);
        let mut out = format!(
            "{MAGIC}\nsettings {:016x}\ntasks {}\nelapsed {nanos}\n",
            self.settings_hash, self.tasks
        );
        for (index, payload) in &self.done {
            out.push_str(&format!("done {index} {payload}\n"));
        }
        out
    }

    /// Parses the file format produced by [`Checkpoint::render`].
    pub fn parse(text: &str) -> Result<Checkpoint, CheckpointError> {
        let malformed = |line: usize, reason: &str| CheckpointError::Malformed {
            line,
            reason: reason.to_owned(),
        };
        let mut lines = text.lines().enumerate();
        let (_, magic) = lines.next().ok_or_else(|| malformed(1, "empty file"))?;
        if magic.trim() != MAGIC {
            return Err(malformed(1, "missing `secbench-checkpoint v1` header"));
        }
        let settings_hash = match lines.next() {
            Some((_, l)) if l.starts_with("settings ") => {
                u64::from_str_radix(l["settings ".len()..].trim(), 16)
                    .map_err(|_| malformed(2, "unparsable settings fingerprint"))?
            }
            _ => return Err(malformed(2, "missing `settings` line")),
        };
        let tasks = match lines.next() {
            Some((_, l)) if l.starts_with("tasks ") => l["tasks ".len()..]
                .trim()
                .parse()
                .map_err(|_| malformed(3, "unparsable task count"))?,
            _ => return Err(malformed(3, "missing `tasks` line")),
        };
        // The `elapsed` header is optional: checkpoints written before
        // deadline accounting existed lack it and resume with zero
        // consumed wall-clock.
        let mut consumed = std::time::Duration::ZERO;
        let mut pending = None;
        match lines.next() {
            Some((_, l)) if l.starts_with("elapsed ") => {
                let nanos: u64 = l["elapsed ".len()..]
                    .trim()
                    .parse()
                    .map_err(|_| malformed(4, "unparsable elapsed nanoseconds"))?;
                consumed = std::time::Duration::from_nanos(nanos);
            }
            Some(other) => pending = Some(other),
            None => {}
        }
        let mut done = Vec::new();
        for (i, line) in pending.into_iter().chain(lines) {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("done ")
                .ok_or_else(|| malformed(lineno, "expected a `done` line"))?;
            let (index, payload) = rest
                .split_once(' ')
                .ok_or_else(|| malformed(lineno, "expected `done <index> <result>`"))?;
            let index: usize = index
                .parse()
                .map_err(|_| malformed(lineno, "unparsable task index"))?;
            done.push((index, payload.to_owned()));
        }
        Ok(Checkpoint {
            settings_hash,
            tasks,
            consumed,
            done,
        })
    }

    /// Writes the checkpoint to `path` crash-safely: the content goes to
    /// a sibling temp file first and is atomically renamed over the
    /// target, so a kill at any instant leaves either the old complete
    /// checkpoint or the new complete one — never a torn file.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(self.render().as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and parses a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::parse(&fs::read_to_string(path)?)
    }
}

/// Folds `parts` into `base` with [`splitmix64`] — the common fingerprint
/// combinator for campaign identities.
pub fn fingerprint(base: u64, parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = splitmix64(base);
    for part in parts {
        h = splitmix64(h ^ part);
    }
    h
}

/// Fingerprints a string (e.g. a driver name) into a fingerprint part.
pub fn fingerprint_str(s: &str) -> u64 {
    fingerprint(0x5ec_b3c4, s.bytes().map(u64::from))
}

/// Fingerprints the [`TrialSettings`] fields that determine a campaign's
/// *results*. The worker count is deliberately excluded: any sharding of
/// the trial space produces bitwise-identical measurements, so a
/// checkpoint taken with `--workers 8` must resume cleanly under
/// `--workers 2` (or serially).
pub fn settings_fingerprint(settings: &TrialSettings) -> u64 {
    use sectlb_tlb::RandomFillEviction;
    fingerprint(
        0x0007_ab1e_c4ec,
        [
            u64::from(settings.trials),
            settings.base_seed,
            settings.config.ways() as u64,
            settings.config.sets() as u64,
            settings.config.entries() as u64,
            match settings.rf_eviction {
                RandomFillEviction::RandomWay => 0,
                RandomFillEviction::LruWay => 1,
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::num::NonZeroUsize;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sectlb-ckpt-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn measurement_record_roundtrips() {
        let m = Measurement {
            trials: 25,
            n_mapped_miss: 7,
            n_not_mapped_miss: 19,
        };
        assert_eq!(Measurement::decode(&m.encode()), Some(m));
        assert_eq!(Measurement::decode("1 2"), None);
        assert_eq!(Measurement::decode("1 2 3 4"), None);
    }

    #[test]
    fn f64_record_is_bitwise() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, 0.1 + 0.2] {
            let back = f64::decode(&v.encode()).expect("decodes");
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn checkpoint_file_roundtrips() {
        let mut ck = Checkpoint::new(0xdead_beef, 10);
        ck.consumed = std::time::Duration::from_nanos(45_000_000_123);
        ck.record(3, &7u64);
        ck.record(
            0,
            &Measurement {
                trials: 5,
                n_mapped_miss: 1,
                n_not_mapped_miss: 2,
            },
        );
        let parsed = Checkpoint::parse(&ck.render()).expect("parses");
        assert_eq!(parsed, ck);
    }

    #[test]
    fn legacy_files_without_elapsed_load_with_zero_consumed() {
        let text = "secbench-checkpoint v1\nsettings 00000000000000ff\ntasks 2\ndone 1 9\n";
        let ck = Checkpoint::parse(text).expect("parses");
        assert_eq!(ck.consumed, std::time::Duration::ZERO);
        assert_eq!(ck.done, vec![(1, "9".to_owned())]);
        assert!(matches!(
            Checkpoint::parse("secbench-checkpoint v1\nsettings 00\ntasks 2\nelapsed x\n"),
            Err(CheckpointError::Malformed { line: 4, .. })
        ));
    }

    #[test]
    fn save_and_load_via_atomic_rename() {
        let path = tmp_path("save-load");
        let mut ck = Checkpoint::new(42, 3);
        ck.record(1, &99u64);
        ck.save(&path).expect("saves");
        let loaded = Checkpoint::load(&path).expect("loads");
        assert_eq!(loaded, ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_rejects_foreign_campaigns() {
        let ck = Checkpoint::new(1, 5);
        assert!(ck.validate(1, 5).is_ok());
        assert!(matches!(
            ck.validate(2, 5),
            Err(CheckpointError::SettingsMismatch { .. })
        ));
        assert!(matches!(
            ck.validate(1, 6),
            Err(CheckpointError::TaskCountMismatch { .. })
        ));
    }

    #[test]
    fn malformed_files_are_rejected_with_line_numbers() {
        assert!(matches!(
            Checkpoint::parse(""),
            Err(CheckpointError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            Checkpoint::parse("secbench-checkpoint v1\nsettings zz\n"),
            Err(CheckpointError::Malformed { line: 2, .. })
        ));
        let text = "secbench-checkpoint v1\nsettings 00000000000000ff\ntasks 2\nnope\n";
        assert!(matches!(
            Checkpoint::parse(text),
            Err(CheckpointError::Malformed { line: 4, .. })
        ));
    }

    #[test]
    fn decoded_rejects_out_of_range_indices() {
        let mut ck = Checkpoint::new(0, 2);
        ck.record(5, &1u64);
        assert!(matches!(
            ck.decoded::<u64>(),
            Err(CheckpointError::Malformed { .. })
        ));
    }

    #[test]
    fn settings_fingerprint_ignores_workers_but_not_results_knobs() {
        let base = TrialSettings::default();
        let with_workers = TrialSettings {
            workers: NonZeroUsize::new(8),
            ..base
        };
        assert_eq!(
            settings_fingerprint(&base),
            settings_fingerprint(&with_workers)
        );
        let other_trials = TrialSettings {
            trials: base.trials + 1,
            ..base
        };
        assert_ne!(
            settings_fingerprint(&base),
            settings_fingerprint(&other_trials)
        );
        let other_seed = TrialSettings {
            base_seed: base.base_seed ^ 1,
            ..base
        };
        assert_ne!(
            settings_fingerprint(&base),
            settings_fingerprint(&other_seed)
        );
    }
}
