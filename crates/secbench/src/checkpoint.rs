//! Crash-safe campaign checkpoints.
//!
//! A long campaign (tens of thousands of trials) should survive a killed
//! process: the fault-tolerant engine in [`crate::resilience`]
//! periodically serializes every completed shard's result — together with
//! a fingerprint of the campaign's settings and the task count — and a
//! `--resume` run skips the recorded shards. Because every trial's seed
//! is a pure function of its coordinates (see
//! [`crate::run::derive_trial_seed`]), a resumed campaign is bitwise
//! identical to an uninterrupted one.
//!
//! # File format
//!
//! A checkpoint is a short line-oriented text file wrapped in the
//! checksummed [`crate::iofault`] frame and written with a temp-file +
//! atomic-rename + parent-directory fsync, so a kill mid-write can never
//! corrupt an existing checkpoint and the rename itself is durable:
//!
//! ```text
//! secbench-frame v1 123 89abcdef 01234567
//! secbench-checkpoint v1
//! settings 00c0ffee00c0ffee
//! tasks 72
//! elapsed 45000000000
//! done 0 25 3 22
//! done 5 25 24 1
//! ```
//!
//! Saves keep a generation chain: before overwriting, a *valid* current
//! file is rotated to `<path>.prev`, so even a write torn by a crash (or
//! by `--inject-io torn`) leaves the last good generation recoverable.
//! [`Checkpoint::load_recovering`] walks current → previous → fresh and
//! never fails on corruption; because every trial seed is a pure function
//! of its coordinates, resuming from *any* of those three points yields
//! bitwise-identical output. Unframed v1 files from older releases still
//! load.
//!
//! `settings` is the campaign fingerprint ([`settings_fingerprint`]
//! chained with driver-specific coordinates); a mismatch on load is a
//! hard error — resuming a different campaign from a stale file would
//! silently corrupt results. `elapsed` is the campaign wall-clock (in
//! nanoseconds) consumed up to the flush, across every run in the resume
//! chain — it is what keeps `--deadline` honest across `--resume`
//! (files written before this line existed load as zero consumed). Each
//! `done` line is a completed task index followed by its
//! [`Record`]-encoded result.

use std::fs;
use std::path::{Path, PathBuf};

use crate::iofault::{self, IoInjector};
use crate::run::{splitmix64, Measurement, TrialSettings};

/// The version tag in the checkpoint header.
const MAGIC: &str = "secbench-checkpoint v1";

/// A task result that can round-trip through a checkpoint line.
///
/// Encodings must be a single line without newlines and must round-trip
/// **bitwise** (floats are stored as their IEEE-754 bit patterns) — the
/// resume contract promises output identical to an uninterrupted run.
pub trait Record: Sized {
    /// Serializes the result as a single line.
    fn encode(&self) -> String;
    /// Parses a line produced by [`Record::encode`].
    fn decode(line: &str) -> Option<Self>;
}

impl Record for Measurement {
    fn encode(&self) -> String {
        format!(
            "{} {} {}",
            self.trials, self.n_mapped_miss, self.n_not_mapped_miss
        )
    }

    fn decode(line: &str) -> Option<Measurement> {
        let mut parts = line.split_whitespace();
        let trials = parts.next()?.parse().ok()?;
        let n_mapped_miss = parts.next()?.parse().ok()?;
        let n_not_mapped_miss = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Measurement {
            trials,
            n_mapped_miss,
            n_not_mapped_miss,
        })
    }
}

impl Record for u64 {
    fn encode(&self) -> String {
        format!("{self}")
    }

    fn decode(line: &str) -> Option<u64> {
        line.trim().parse().ok()
    }
}

impl Record for f64 {
    fn encode(&self) -> String {
        // Bit-exact: the resume contract is *bitwise* identity, which a
        // decimal round-trip cannot guarantee for every value.
        format!("{:016x}", self.to_bits())
    }

    fn decode(line: &str) -> Option<f64> {
        u64::from_str_radix(line.trim(), 16)
            .ok()
            .map(f64::from_bits)
    }
}

impl Record for (f64, f64) {
    fn encode(&self) -> String {
        format!("{} {}", self.0.encode(), self.1.encode())
    }

    fn decode(line: &str) -> Option<(f64, f64)> {
        let mut parts = line.split_whitespace();
        let a = f64::decode(parts.next()?)?;
        let b = f64::decode(parts.next()?)?;
        if parts.next().is_some() {
            return None;
        }
        Some((a, b))
    }
}

impl Record for (u64, u64) {
    fn encode(&self) -> String {
        format!("{} {}", self.0, self.1)
    }

    fn decode(line: &str) -> Option<(u64, u64)> {
        let mut parts = line.split_whitespace();
        let a = parts.next()?.parse().ok()?;
        let b = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some((a, b))
    }
}

impl Record for (f64, f64, f64) {
    fn encode(&self) -> String {
        format!(
            "{} {} {}",
            self.0.encode(),
            self.1.encode(),
            self.2.encode()
        )
    }

    fn decode(line: &str) -> Option<(f64, f64, f64)> {
        let mut parts = line.split_whitespace();
        let a = f64::decode(parts.next()?)?;
        let b = f64::decode(parts.next()?)?;
        let c = f64::decode(parts.next()?)?;
        if parts.next().is_some() {
            return None;
        }
        Some((a, b, c))
    }
}

/// Why a checkpoint could not be written, read, or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file is not a well-formed checkpoint.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The checkpoint was written by a campaign with different settings.
    SettingsMismatch {
        /// The live campaign's fingerprint.
        expected: u64,
        /// The fingerprint recorded in the file.
        found: u64,
    },
    /// The checkpoint records a different number of tasks.
    TaskCountMismatch {
        /// The live campaign's task count.
        expected: usize,
        /// The task count recorded in the file.
        found: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::Malformed { line, reason } => {
                write!(f, "malformed checkpoint (line {line}): {reason}")
            }
            CheckpointError::SettingsMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different campaign: settings fingerprint \
                 {found:016x} in the file, {expected:016x} for this run"
            ),
            CheckpointError::TaskCountMismatch { expected, found } => write!(
                f,
                "checkpoint records {found} tasks but this campaign has {expected}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// How often and where the engine checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (written with temp-file + atomic rename).
    pub path: PathBuf,
    /// Write the file after every `every` newly completed shards (a final
    /// write always happens at run end or interruption).
    pub every: usize,
}

impl CheckpointPolicy {
    /// A policy writing `path` after every 8 completed shards.
    pub fn new(path: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            path: path.into(),
            every: 8,
        }
    }
}

/// An in-memory checkpoint: the campaign identity plus every completed
/// task's encoded result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the campaign settings (see [`settings_fingerprint`]
    /// and [`fingerprint`]).
    pub settings_hash: u64,
    /// Total number of tasks in the campaign.
    pub tasks: usize,
    /// Campaign wall-clock consumed up to this flush, summed across every
    /// run in the resume chain. Deducted from `--deadline` on resume.
    pub consumed: std::time::Duration,
    /// Completed tasks: `(task index, encoded result)`, in completion
    /// order.
    pub done: Vec<(usize, String)>,
}

impl Checkpoint {
    /// An empty checkpoint for a campaign of `tasks` tasks.
    pub fn new(settings_hash: u64, tasks: usize) -> Checkpoint {
        Checkpoint {
            settings_hash,
            tasks,
            consumed: std::time::Duration::ZERO,
            done: Vec::new(),
        }
    }

    /// Records one completed task.
    pub fn record(&mut self, index: usize, result: &impl Record) {
        self.done.push((index, result.encode()));
    }

    /// Errors unless the checkpoint matches the live campaign's identity.
    pub fn validate(&self, settings_hash: u64, tasks: usize) -> Result<(), CheckpointError> {
        if self.settings_hash != settings_hash {
            return Err(CheckpointError::SettingsMismatch {
                expected: settings_hash,
                found: self.settings_hash,
            });
        }
        if self.tasks != tasks {
            return Err(CheckpointError::TaskCountMismatch {
                expected: tasks,
                found: self.tasks,
            });
        }
        Ok(())
    }

    /// Decodes every recorded result, rejecting out-of-range indices and
    /// undecodable payloads.
    pub fn decoded<R: Record>(&self) -> Result<Vec<(usize, R)>, CheckpointError> {
        self.done
            .iter()
            .enumerate()
            .map(|(n, (index, payload))| {
                let malformed = |reason: String| CheckpointError::Malformed {
                    // +5 for the four header lines, 1-based.
                    line: n + 5,
                    reason,
                };
                if *index >= self.tasks {
                    return Err(malformed(format!(
                        "task index {index} out of range (campaign has {} tasks)",
                        self.tasks
                    )));
                }
                let record = R::decode(payload)
                    .ok_or_else(|| malformed(format!("undecodable result {payload:?}")))?;
                Ok((*index, record))
            })
            .collect()
    }

    /// Serializes the checkpoint to its file format.
    pub fn render(&self) -> String {
        let nanos = u64::try_from(self.consumed.as_nanos()).unwrap_or(u64::MAX);
        let mut out = format!(
            "{MAGIC}\nsettings {:016x}\ntasks {}\nelapsed {nanos}\n",
            self.settings_hash, self.tasks
        );
        for (index, payload) in &self.done {
            out.push_str(&format!("done {index} {payload}\n"));
        }
        out
    }

    /// Parses the file format produced by [`Checkpoint::render`].
    pub fn parse(text: &str) -> Result<Checkpoint, CheckpointError> {
        let malformed = |line: usize, reason: &str| CheckpointError::Malformed {
            line,
            reason: reason.to_owned(),
        };
        let mut lines = text.lines().enumerate();
        let (_, magic) = lines.next().ok_or_else(|| malformed(1, "empty file"))?;
        if magic.trim() != MAGIC {
            return Err(malformed(1, "missing `secbench-checkpoint v1` header"));
        }
        let settings_hash = match lines.next() {
            Some((_, l)) if l.starts_with("settings ") => {
                u64::from_str_radix(l["settings ".len()..].trim(), 16)
                    .map_err(|_| malformed(2, "unparsable settings fingerprint"))?
            }
            _ => return Err(malformed(2, "missing `settings` line")),
        };
        let tasks = match lines.next() {
            Some((_, l)) if l.starts_with("tasks ") => l["tasks ".len()..]
                .trim()
                .parse()
                .map_err(|_| malformed(3, "unparsable task count"))?,
            _ => return Err(malformed(3, "missing `tasks` line")),
        };
        // The `elapsed` header is optional: checkpoints written before
        // deadline accounting existed lack it and resume with zero
        // consumed wall-clock.
        let mut consumed = std::time::Duration::ZERO;
        let mut pending = None;
        match lines.next() {
            Some((_, l)) if l.starts_with("elapsed ") => {
                let nanos: u64 = l["elapsed ".len()..]
                    .trim()
                    .parse()
                    .map_err(|_| malformed(4, "unparsable elapsed nanoseconds"))?;
                consumed = std::time::Duration::from_nanos(nanos);
            }
            Some(other) => pending = Some(other),
            None => {}
        }
        let mut done = Vec::new();
        for (i, line) in pending.into_iter().chain(lines) {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("done ")
                .ok_or_else(|| malformed(lineno, "expected a `done` line"))?;
            let (index, payload) = rest
                .split_once(' ')
                .ok_or_else(|| malformed(lineno, "expected `done <index> <result>`"))?;
            let index: usize = index
                .parse()
                .map_err(|_| malformed(lineno, "unparsable task index"))?;
            done.push((index, payload.to_owned()));
        }
        Ok(Checkpoint {
            settings_hash,
            tasks,
            consumed,
            done,
        })
    }

    /// Writes the checkpoint to `path` crash-safely: the content is
    /// sealed in the checksummed [`crate::iofault`] frame, staged through
    /// a sibling temp file, atomically renamed over the target, and the
    /// parent directory is fsynced so the rename survives a power loss. A
    /// valid existing checkpoint is first rotated to `<path>.prev`, so a
    /// torn write of the new generation never loses the last good one.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        self.save_with(path, &IoInjector::disabled())
    }

    /// [`Checkpoint::save`] through an I/O fault-injection seam
    /// (`--inject-io`).
    pub fn save_with(&self, path: &Path, injector: &IoInjector) -> Result<(), CheckpointError> {
        let sealed = iofault::seal(&self.render());
        iofault::write_generations(path, sealed.as_bytes(), injector, |text| {
            Checkpoint::parse_stored(text).is_ok()
        })?;
        Ok(())
    }

    /// Parses stored checkpoint bytes: a sealed frame is verified and
    /// stripped first; an unframed file (pre-checksum releases) parses
    /// directly.
    pub fn parse_stored(text: &str) -> Result<Checkpoint, CheckpointError> {
        if iofault::is_framed(text) {
            let payload = iofault::unseal(text).map_err(|reason| CheckpointError::Malformed {
                line: 1,
                reason: format!("frame check failed: {reason}"),
            })?;
            Checkpoint::parse(payload)
        } else {
            Checkpoint::parse(text)
        }
    }

    /// Reads and parses a checkpoint file (strict: a corrupt file is an
    /// error — see [`Checkpoint::load_recovering`] for the fallback
    /// chain).
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::parse_stored(&fs::read_to_string(path)?)
    }

    /// Loads `path` with generation-based recovery: a corrupt or torn
    /// current file falls back to the last good `<path>.prev` generation;
    /// if both are unreadable the campaign starts fresh. Never fails —
    /// corruption costs only re-computed shards, and every fallback point
    /// resumes bitwise-identically because trial seeds are pure functions
    /// of their coordinates. The returned variant says which generation
    /// answered so callers can emit telemetry. Campaign *identity*
    /// mismatches are not recovery's business: callers still
    /// [`Checkpoint::validate`] whatever is returned.
    pub fn load_recovering(path: &Path, injector: &IoInjector) -> RecoveredLoad {
        let read = |p: &Path| -> Result<Checkpoint, CheckpointError> {
            Checkpoint::parse_stored(&iofault::read_to_string(p, injector)?)
        };
        let current_err = match read(path) {
            Ok(ck) => return RecoveredLoad::Current(ck),
            Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return RecoveredLoad::Missing
            }
            Err(e) => e.to_string(),
        };
        match read(&iofault::prev_path(path)) {
            Ok(ck) => RecoveredLoad::Previous {
                checkpoint: ck,
                error: current_err,
            },
            Err(_) => RecoveredLoad::Fresh { error: current_err },
        }
    }
}

/// What [`Checkpoint::load_recovering`] found on disk.
#[derive(Debug)]
pub enum RecoveredLoad {
    /// No checkpoint file exists: a first run, not a recovery.
    Missing,
    /// The current generation is intact.
    Current(Checkpoint),
    /// The current generation is corrupt; the previous good generation
    /// answered.
    Previous {
        /// The recovered previous generation.
        checkpoint: Checkpoint,
        /// Why the current generation was rejected.
        error: String,
    },
    /// Both generations are unreadable: the campaign starts fresh.
    Fresh {
        /// Why the current generation was rejected.
        error: String,
    },
}

/// Folds `parts` into `base` with [`splitmix64`] — the common fingerprint
/// combinator for campaign identities.
pub fn fingerprint(base: u64, parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = splitmix64(base);
    for part in parts {
        h = splitmix64(h ^ part);
    }
    h
}

/// Fingerprints a string (e.g. a driver name) into a fingerprint part.
pub fn fingerprint_str(s: &str) -> u64 {
    fingerprint(0x5ec_b3c4, s.bytes().map(u64::from))
}

/// Fingerprints the [`TrialSettings`] fields that determine a campaign's
/// *results*. The worker count is deliberately excluded: any sharding of
/// the trial space produces bitwise-identical measurements, so a
/// checkpoint taken with `--workers 8` must resume cleanly under
/// `--workers 2` (or serially).
pub fn settings_fingerprint(settings: &TrialSettings) -> u64 {
    use sectlb_tlb::RandomFillEviction;
    fingerprint(
        0x0007_ab1e_c4ec,
        [
            u64::from(settings.trials),
            settings.base_seed,
            settings.config.ways() as u64,
            settings.config.sets() as u64,
            settings.config.entries() as u64,
            match settings.rf_eviction {
                RandomFillEviction::RandomWay => 0,
                RandomFillEviction::LruWay => 1,
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::num::NonZeroUsize;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sectlb-ckpt-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn measurement_record_roundtrips() {
        let m = Measurement {
            trials: 25,
            n_mapped_miss: 7,
            n_not_mapped_miss: 19,
        };
        assert_eq!(Measurement::decode(&m.encode()), Some(m));
        assert_eq!(Measurement::decode("1 2"), None);
        assert_eq!(Measurement::decode("1 2 3 4"), None);
    }

    #[test]
    fn f64_record_is_bitwise() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, 0.1 + 0.2] {
            let back = f64::decode(&v.encode()).expect("decodes");
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn checkpoint_file_roundtrips() {
        let mut ck = Checkpoint::new(0xdead_beef, 10);
        ck.consumed = std::time::Duration::from_nanos(45_000_000_123);
        ck.record(3, &7u64);
        ck.record(
            0,
            &Measurement {
                trials: 5,
                n_mapped_miss: 1,
                n_not_mapped_miss: 2,
            },
        );
        let parsed = Checkpoint::parse(&ck.render()).expect("parses");
        assert_eq!(parsed, ck);
    }

    #[test]
    fn legacy_files_without_elapsed_load_with_zero_consumed() {
        let text = "secbench-checkpoint v1\nsettings 00000000000000ff\ntasks 2\ndone 1 9\n";
        let ck = Checkpoint::parse(text).expect("parses");
        assert_eq!(ck.consumed, std::time::Duration::ZERO);
        assert_eq!(ck.done, vec![(1, "9".to_owned())]);
        assert!(matches!(
            Checkpoint::parse("secbench-checkpoint v1\nsettings 00\ntasks 2\nelapsed x\n"),
            Err(CheckpointError::Malformed { line: 4, .. })
        ));
    }

    #[test]
    fn save_and_load_via_atomic_rename() {
        let path = tmp_path("save-load");
        let mut ck = Checkpoint::new(42, 3);
        ck.record(1, &99u64);
        ck.save(&path).expect("saves");
        let on_disk = std::fs::read_to_string(&path).expect("reads");
        assert!(iofault::is_framed(&on_disk), "saves are checksummed");
        let loaded = Checkpoint::load(&path).expect("loads");
        assert_eq!(loaded, ck);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(iofault::prev_path(&path)).ok();
    }

    #[test]
    fn unframed_legacy_saves_still_load() {
        let path = tmp_path("legacy-unframed");
        let mut ck = Checkpoint::new(7, 4);
        ck.record(2, &11u64);
        std::fs::write(&path, ck.render()).expect("writes");
        assert_eq!(Checkpoint::load(&path).expect("loads"), ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_recovering_walks_the_generation_chain() {
        let path = tmp_path("recovering");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(iofault::prev_path(&path)).ok();
        let inj = IoInjector::disabled();
        assert!(matches!(
            Checkpoint::load_recovering(&path, &inj),
            RecoveredLoad::Missing
        ));

        let mut gen1 = Checkpoint::new(42, 3);
        gen1.record(0, &1u64);
        gen1.save(&path).expect("saves");
        match Checkpoint::load_recovering(&path, &inj) {
            RecoveredLoad::Current(ck) => assert_eq!(ck, gen1),
            other => panic!("expected Current, got {other:?}"),
        }

        // A second save rotates gen1 to `.prev`; corrupting the current
        // generation then recovers gen1 instead of erroring.
        let mut gen2 = gen1.clone();
        gen2.record(1, &2u64);
        gen2.save(&path).expect("saves");
        let sealed = std::fs::read_to_string(&path).expect("reads");
        std::fs::write(&path, &sealed[..sealed.len() / 2]).expect("truncates");
        match Checkpoint::load_recovering(&path, &inj) {
            RecoveredLoad::Previous { checkpoint, error } => {
                assert_eq!(checkpoint, gen1);
                assert!(!error.is_empty());
            }
            other => panic!("expected Previous, got {other:?}"),
        }

        // Both generations gone bad: fresh start, never a panic.
        std::fs::write(iofault::prev_path(&path), "junk").expect("corrupts");
        assert!(matches!(
            Checkpoint::load_recovering(&path, &inj),
            RecoveredLoad::Fresh { .. }
        ));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(iofault::prev_path(&path)).ok();
    }

    #[test]
    fn torn_injected_saves_keep_the_previous_generation_loadable() {
        let path = tmp_path("torn-gen");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(iofault::prev_path(&path)).ok();
        let torn = IoInjector::new(
            9,
            crate::iofault::IoFault {
                kind: crate::iofault::IoFaultKind::Torn,
                per_mille: 1000,
            },
        );
        // Every save is torn: no generation is ever valid, so recovery
        // reports a fresh start — but never panics, never loads garbage.
        let mut ck = Checkpoint::new(1, 2);
        ck.record(0, &5u64);
        ck.save_with(&path, &torn)
            .expect("torn saves report success");
        assert!(matches!(
            Checkpoint::load_recovering(&path, &IoInjector::disabled()),
            RecoveredLoad::Fresh { .. }
        ));

        // A good save, then a torn one: the good generation rotates to
        // `.prev` and recovery falls back to it.
        ck.save(&path).expect("saves");
        let mut later = ck.clone();
        later.record(1, &6u64);
        later
            .save_with(&path, &torn)
            .expect("torn saves report success");
        match Checkpoint::load_recovering(&path, &IoInjector::disabled()) {
            RecoveredLoad::Previous { checkpoint, .. } => assert_eq!(checkpoint, ck),
            other => panic!("expected Previous, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(iofault::prev_path(&path)).ok();
    }

    #[test]
    fn validate_rejects_foreign_campaigns() {
        let ck = Checkpoint::new(1, 5);
        assert!(ck.validate(1, 5).is_ok());
        assert!(matches!(
            ck.validate(2, 5),
            Err(CheckpointError::SettingsMismatch { .. })
        ));
        assert!(matches!(
            ck.validate(1, 6),
            Err(CheckpointError::TaskCountMismatch { .. })
        ));
    }

    #[test]
    fn malformed_files_are_rejected_with_line_numbers() {
        assert!(matches!(
            Checkpoint::parse(""),
            Err(CheckpointError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            Checkpoint::parse("secbench-checkpoint v1\nsettings zz\n"),
            Err(CheckpointError::Malformed { line: 2, .. })
        ));
        let text = "secbench-checkpoint v1\nsettings 00000000000000ff\ntasks 2\nnope\n";
        assert!(matches!(
            Checkpoint::parse(text),
            Err(CheckpointError::Malformed { line: 4, .. })
        ));
    }

    #[test]
    fn decoded_rejects_out_of_range_indices() {
        let mut ck = Checkpoint::new(0, 2);
        ck.record(5, &1u64);
        assert!(matches!(
            ck.decoded::<u64>(),
            Err(CheckpointError::Malformed { .. })
        ));
    }

    #[test]
    fn settings_fingerprint_ignores_workers_but_not_results_knobs() {
        let base = TrialSettings::default();
        let with_workers = TrialSettings {
            workers: NonZeroUsize::new(8),
            ..base
        };
        assert_eq!(
            settings_fingerprint(&base),
            settings_fingerprint(&with_workers)
        );
        let other_trials = TrialSettings {
            trials: base.trials + 1,
            ..base
        };
        assert_ne!(
            settings_fingerprint(&base),
            settings_fingerprint(&other_trials)
        );
        let other_seed = TrialSettings {
            base_seed: base.base_seed ^ 1,
            ..base
        };
        assert_ne!(
            settings_fingerprint(&base),
            settings_fingerprint(&other_seed)
        );
    }
}
