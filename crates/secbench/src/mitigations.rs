//! Evaluation of the pre-existing mitigation approaches of Section 2.3.
//!
//! Before introducing its hardware designs, the paper surveys five
//! existing approaches and counts how many of the 24 vulnerability types
//! each defends:
//!
//! 1. ASID-tagged SA TLBs (today's Linux) — 10 of 24;
//! 2. Sanctum's security monitor flushing the TLB on every context
//!    switch — 14 of 24 (same for Intel SGX's hardware flush);
//! 3. fully-associative TLBs (one set: miss-based attacks carry no index
//!    information) — 18 of 24;
//! 4. the paper's SP TLB — 14 of 24;
//! 5. the paper's RF TLB — 24 of 24.
//!
//! This module measures those counts with the same micro security
//! benchmarks used for Table 4.

use sectlb_model::{enumerate_vulnerabilities, Vulnerability};
use sectlb_sim::machine::TlbDesign;
use sectlb_sim::os::FlushPolicy;
use sectlb_tlb::config::TlbConfig;

use crate::adaptive::{run_vulnerability_adaptive_with_builder, SequentialTest};
use crate::run::{run_vulnerability_with_builder, Measurement, TrialSettings};

/// A mitigation approach from Section 2.3 (or one of the paper's designs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mitigation {
    /// ASID-tagged set-associative TLB, no flushing (today's Linux).
    AsidTags,
    /// Whole-TLB flush on every context switch (Sanctum's security
    /// monitor in software; Intel SGX in hardware).
    FlushOnSwitch,
    /// A fully-associative TLB (no sets, therefore no set-index channel).
    FullyAssociative,
    /// The paper's Static-Partition TLB.
    StaticPartition,
    /// The paper's Random-Fill TLB.
    RandomFill,
    /// A hardware TLB that clears its own entries on every context
    /// switch — the Sanctum/SGX policy moved into the fill path
    /// ([`TlbDesign::Fs`]).
    HardwareFlush,
    /// `fence.t`-style temporal partitioning: the hardware flush plus a
    /// wipe of all replacement state, so no microarchitectural residue
    /// survives the switch ([`TlbDesign::Ft`]).
    FenceT,
    /// A multi-page-size TLB (4KB/2MB/1GB entry classes over one lookup
    /// path, [`TlbDesign::Ms`]); the 4KB base class carries the
    /// security-evaluation geometry.
    MultiSize,
}

impl Mitigation {
    /// All five approaches, in the paper's presentation order.
    pub const ALL: [Mitigation; 5] = [
        Mitigation::AsidTags,
        Mitigation::FlushOnSwitch,
        Mitigation::FullyAssociative,
        Mitigation::StaticPartition,
        Mitigation::RandomFill,
    ];

    /// [`Mitigation::ALL`] plus the temporal-partitioning and
    /// multi-page-size designs (`--extended`). Append-only: the classic
    /// five keep their positions so default survey output never moves.
    pub const EXTENDED: [Mitigation; 8] = [
        Mitigation::AsidTags,
        Mitigation::FlushOnSwitch,
        Mitigation::FullyAssociative,
        Mitigation::StaticPartition,
        Mitigation::RandomFill,
        Mitigation::HardwareFlush,
        Mitigation::FenceT,
        Mitigation::MultiSize,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Mitigation::AsidTags => "SA TLB + ASIDs (Linux)",
            Mitigation::FlushOnSwitch => "SA TLB + flush on switch (Sanctum/SGX)",
            Mitigation::FullyAssociative => "FA TLB",
            Mitigation::StaticPartition => "SP TLB",
            Mitigation::RandomFill => "RF TLB",
            Mitigation::HardwareFlush => "FS TLB (hw flush on switch)",
            Mitigation::FenceT => "FT TLB (fence.t full clear)",
            Mitigation::MultiSize => "MS TLB (multi page size)",
        }
    }

    /// The number of the 24 vulnerability types the paper says this
    /// approach defends (Section 2.3 / Section 5.3.2; the temporal
    /// designs follow Wistoff et al.'s flush coverage, the
    /// multi-page-size TLB inherits the SA baseline).
    pub fn paper_defended_count(self) -> usize {
        match self {
            Mitigation::AsidTags => 10,
            Mitigation::FlushOnSwitch => 14,
            Mitigation::FullyAssociative => 18,
            Mitigation::StaticPartition => 14,
            Mitigation::RandomFill => 24,
            Mitigation::HardwareFlush => 14,
            Mitigation::FenceT => 14,
            Mitigation::MultiSize => 10,
        }
    }

    fn design(self) -> TlbDesign {
        match self {
            Mitigation::StaticPartition => TlbDesign::Sp,
            Mitigation::RandomFill => TlbDesign::Rf,
            Mitigation::HardwareFlush => TlbDesign::Fs,
            Mitigation::FenceT => TlbDesign::Ft,
            Mitigation::MultiSize => TlbDesign::Ms,
            _ => TlbDesign::Sa,
        }
    }

    fn config(self) -> TlbConfig {
        match self {
            // One set, same capacity as the security-evaluation setup.
            Mitigation::FullyAssociative => TlbConfig::fa(32).expect("valid"),
            _ => TlbConfig::security_eval(),
        }
    }

    fn flush_policy(self) -> FlushPolicy {
        match self {
            // The temporal designs clear themselves in hardware — the OS
            // policy stays off so the measurement exercises the design.
            Mitigation::FlushOnSwitch => FlushPolicy::FlushOnSwitch,
            _ => FlushPolicy::None,
        }
    }
}

/// Measures one vulnerability under one mitigation.
pub fn run_mitigation(
    vulnerability: &Vulnerability,
    mitigation: Mitigation,
    settings: &TrialSettings,
) -> Measurement {
    let mut s = *settings;
    s.config = mitigation.config();
    run_vulnerability_with_builder(vulnerability, mitigation.design(), &s, |b| {
        b.flush_policy(mitigation.flush_policy())
    })
}

/// Counts how many of the 24 vulnerability types a mitigation defends.
///
/// With `settings.workers` set, the 24 rows are sharded across the
/// worker pool (each row measured serially inside its shard — the outer
/// grain is coarse enough); the count is identical to the serial path
/// because every row's measurement is an independent pure function of
/// its coordinates.
pub fn defended_count(mitigation: Mitigation, settings: &TrialSettings, threshold: f64) -> usize {
    let vulns = enumerate_vulnerabilities();
    match settings.workers {
        Some(workers) => {
            let inner = TrialSettings {
                workers: None,
                ..*settings
            };
            let (flags, _stats) = crate::parallel::run_sharded(&vulns, workers, |v| {
                run_mitigation(v, mitigation, &inner).defends(threshold)
            });
            flags.into_iter().filter(|&defended| defended).count()
        }
        None => vulns
            .iter()
            .filter(|v| run_mitigation(v, mitigation, settings).defends(threshold))
            .count(),
    }
}

/// [`run_mitigation`] with adaptive early stopping: trials stop as soon
/// as the sequential test settles the row's defended/vulnerable verdict.
pub fn run_mitigation_adaptive(
    vulnerability: &Vulnerability,
    mitigation: Mitigation,
    settings: &TrialSettings,
    test: &SequentialTest,
) -> Measurement {
    let mut s = *settings;
    s.config = mitigation.config();
    run_vulnerability_adaptive_with_builder(vulnerability, mitigation.design(), &s, test, &|b| {
        b.flush_policy(mitigation.flush_policy())
    })
}

/// [`defended_count`] with adaptive early stopping, returning the count
/// plus the total trials x 2 placements saved across the 24 rows.
///
/// The verdicts agree with [`defended_count`]'s by construction: the
/// sequential test only settles a cell when its whole confidence
/// rectangle sits on one side of the threshold, and the test's
/// `threshold` must equal the exhaustive comparison's.
pub fn defended_count_adaptive(
    mitigation: Mitigation,
    settings: &TrialSettings,
    test: &SequentialTest,
) -> (usize, u64) {
    let vulns = enumerate_vulnerabilities();
    let inner = TrialSettings {
        workers: None,
        ..*settings
    };
    let measure = |v: &Vulnerability| {
        let m = run_mitigation_adaptive(v, mitigation, &inner, test);
        (
            m.defends(test.threshold),
            u64::from(settings.trials - m.trials),
        )
    };
    let rows: Vec<(bool, u64)> = match settings.workers {
        Some(workers) => crate::parallel::run_sharded(&vulns, workers, measure).0,
        None => vulns.iter().map(measure).collect(),
    };
    (
        rows.iter().filter(|(defended, _)| *defended).count(),
        rows.iter().map(|(_, saved)| saved).sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sectlb_model::Strategy;

    fn settings() -> TrialSettings {
        TrialSettings {
            trials: 60,
            ..TrialSettings::default()
        }
    }

    #[test]
    fn section_23_defense_counts_reproduce() {
        // The headline of Section 2.3: 10 / 14 / 18 / 14 / 24.
        for m in Mitigation::ALL {
            let measured = defended_count(m, &settings(), 0.06);
            assert_eq!(
                measured,
                m.paper_defended_count(),
                "{} defended {measured}, paper says {}",
                m.label(),
                m.paper_defended_count()
            );
        }
    }

    #[test]
    fn extended_designs_reproduce_their_paper_counts() {
        // FS and FT land exactly on the software flush's 14 (the clear
        // points coincide), and the multi-page-size TLB inherits the SA
        // baseline's 10 on the 4KB-only security workloads.
        for m in [
            Mitigation::HardwareFlush,
            Mitigation::FenceT,
            Mitigation::MultiSize,
        ] {
            let measured = defended_count(m, &settings(), 0.06);
            assert_eq!(
                measured,
                m.paper_defended_count(),
                "{} defended {measured}, expected {}",
                m.label(),
                m.paper_defended_count()
            );
        }
    }

    #[test]
    fn extended_list_keeps_the_classic_prefix() {
        assert_eq!(&Mitigation::EXTENDED[..5], &Mitigation::ALL);
    }

    #[test]
    fn hardware_flush_matches_the_software_policy_row_for_row() {
        // The FS design is the Sanctum/SGX policy moved into hardware:
        // every row's defended verdict must coincide.
        let s = settings();
        for v in enumerate_vulnerabilities() {
            let sw = run_mitigation(&v, Mitigation::FlushOnSwitch, &s);
            let hw = run_mitigation(&v, Mitigation::HardwareFlush, &s);
            assert_eq!(
                sw.defends(0.06),
                hw.defends(0.06),
                "{v}: software {} vs hardware {}",
                sw.capacity(),
                hw.capacity()
            );
        }
    }

    #[test]
    fn flush_on_switch_kills_external_eviction_but_not_collisions() {
        let vulns = enumerate_vulnerabilities();
        let et = vulns
            .iter()
            .find(|v| v.strategy == Strategy::EvictTime)
            .expect("row exists");
        let ic = vulns
            .iter()
            .find(|v| {
                v.strategy == Strategy::InternalCollision && v.pattern.s1.to_string() == "V_d"
            })
            .expect("row exists");
        let et_m = run_mitigation(et, Mitigation::FlushOnSwitch, &settings());
        assert!(et_m.defends(0.05), "Evict+Time survives flushing?");
        let ic_m = run_mitigation(ic, Mitigation::FlushOnSwitch, &settings());
        assert!(
            ic_m.capacity() > 0.9,
            "all-victim Internal Collision never crosses a context switch"
        );
    }

    #[test]
    fn sharded_defended_counts_match_serial() {
        let serial = settings();
        let parallel = TrialSettings {
            workers: std::num::NonZeroUsize::new(3),
            ..serial
        };
        for m in [Mitigation::AsidTags, Mitigation::RandomFill] {
            assert_eq!(
                defended_count(m, &parallel, 0.06),
                defended_count(m, &serial, 0.06),
                "{}",
                m.label()
            );
        }
    }

    #[test]
    fn fa_tlb_removes_the_set_index_channel() {
        // Prime + Probe on an FA TLB: the victim's access evicts exactly
        // one entry regardless of its address — no index information.
        let vulns = enumerate_vulnerabilities();
        let pp = vulns
            .iter()
            .find(|v| v.strategy == Strategy::PrimeProbe)
            .expect("row exists");
        let m = run_mitigation(pp, Mitigation::FullyAssociative, &settings());
        assert!(m.defends(0.05), "C* = {}", m.capacity());
        // But hit-based internal collisions remain.
        let ic = vulns
            .iter()
            .find(|v| {
                v.strategy == Strategy::InternalCollision && v.pattern.s1.to_string() == "A_d"
            })
            .expect("row exists");
        let m = run_mitigation(ic, Mitigation::FullyAssociative, &settings());
        assert!(m.capacity() > 0.9, "C* = {}", m.capacity());
    }
}
