//! Channel capacity of the TLB timing channel (Equation 1 of the paper).
//!
//! The victim's behavior `B` is binary — its secret-dependent access maps
//! to the tested TLB block or not — and, following the paper, both
//! behaviors are taken as equally likely (the attacker's optimal
//! scenario). The attacker's observation `O` is also binary (miss/hit).
//! With `p1 = P(miss | maps)` and `p2 = P(miss | does not map)`, the
//! mutual information `I(B; O)` in bits is:
//!
//! ```text
//! C = p1/2·log₂(2p1/(p1+p2)) + p2/2·log₂(2p2/(p1+p2))
//!   + (1−p1)/2·log₂(2(1−p1)/(2−p1−p2)) + (1−p2)/2·log₂(2(1−p2)/(2−p1−p2))
//! ```
//!
//! A TLB defends a vulnerability exactly when `C = 0`, i.e. `p1 = p2`.

/// One `p·log₂(p/q)` term with the convention `0·log(0/q) = 0`.
fn plogpq(p: f64, q: f64) -> f64 {
    if p <= 0.0 {
        0.0
    } else {
        p * (p / q).log2()
    }
}

/// The mutual information (in bits) between the victim's binary behavior
/// and the attacker's binary observation — Equation (1) of the paper.
///
/// `p1` is the probability of observing a TLB miss when the victim's
/// access maps to the tested block; `p2` when it does not.
///
/// # Panics
///
/// Panics if either probability is outside `[0, 1]`.
///
/// ```
/// use sectlb_secbench::binary_channel_capacity as c;
/// assert_eq!(c(1.0, 0.0), 1.0); // perfect channel
/// assert_eq!(c(0.5, 0.5), 0.0); // no information
/// ```
pub fn binary_channel_capacity(p1: f64, p2: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p1), "p1={p1} out of [0,1]");
    assert!((0.0..=1.0).contains(&p2), "p2={p2} out of [0,1]");
    let miss_avg = (p1 + p2) / 2.0;
    let hit_avg = 1.0 - miss_avg;
    let c = 0.5 * plogpq(p1, miss_avg)
        + 0.5 * plogpq(p2, miss_avg)
        + 0.5 * plogpq(1.0 - p1, hit_avg)
        + 0.5 * plogpq(1.0 - p2, hit_avg);
    // Numerical noise can produce tiny negatives; mutual information is
    // nonnegative by definition.
    c.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn perfect_channels_carry_one_bit() {
        assert!(close(binary_channel_capacity(1.0, 0.0), 1.0));
        assert!(close(binary_channel_capacity(0.0, 1.0), 1.0));
    }

    #[test]
    fn equal_probabilities_carry_nothing() {
        for p in [0.0, 0.25, 0.5, 0.67, 1.0] {
            assert!(close(binary_channel_capacity(p, p), 0.0), "p={p}");
        }
    }

    #[test]
    fn capacity_is_symmetric_in_arguments() {
        for (p1, p2) in [(0.9, 0.1), (0.3, 0.7), (1.0, 0.5)] {
            assert!(close(
                binary_channel_capacity(p1, p2),
                binary_channel_capacity(p2, p1)
            ));
        }
    }

    #[test]
    fn capacity_is_symmetric_under_complement() {
        // Relabeling miss<->hit cannot change the information.
        for (p1, p2) in [(0.9, 0.1), (0.3, 0.7), (0.02, 0.98)] {
            assert!(close(
                binary_channel_capacity(p1, p2),
                binary_channel_capacity(1.0 - p1, 1.0 - p2)
            ));
        }
    }

    #[test]
    fn small_differences_carry_little_information() {
        let c = binary_channel_capacity(0.33, 0.35);
        assert!(c > 0.0 && c < 0.01, "C = {c}");
    }

    #[test]
    fn table4_sa_values_reproduce() {
        // SA TLB, TLB Internal Collision: p1 = 0, p2 = 1 -> C = 1.
        assert!(close(binary_channel_capacity(0.0, 1.0), 1.0));
        // SA TLB, TLB Flush + Reload: p1 = p2 = 1 -> C = 0.
        assert!(close(binary_channel_capacity(1.0, 1.0), 0.0));
    }

    #[test]
    fn paper_measured_examples_are_near_their_reported_capacity() {
        // Paper Table 4, SA TLB, alias Internal Collision row:
        // p1* = 0.02, p2* = 1 -> C* = 0.93 (paper reports 0.93).
        let c = binary_channel_capacity(0.02, 1.0);
        assert!((c - 0.93).abs() < 0.015, "C = {c}");
        // SP TLB, V_u ~> V_d ~> V_u row: p1* = 1, p2* = 0.06 -> 0.83.
        let c = binary_channel_capacity(1.0, 0.06);
        assert!((c - 0.83).abs() < 0.015, "C = {c}");
    }

    #[test]
    fn monotone_in_probability_gap() {
        let mut last = 0.0;
        for gap in 1..=10 {
            let p1 = 0.5 + gap as f64 * 0.05;
            let p2 = 0.5 - gap as f64 * 0.05;
            let c = binary_channel_capacity(p1, p2);
            assert!(c > last, "capacity must grow with the gap");
            last = c;
        }
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_invalid_probability() {
        binary_channel_capacity(1.2, 0.0);
    }
}
