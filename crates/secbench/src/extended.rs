//! Security evaluation of the Appendix B (targeted invalidation) attacks.
//!
//! The paper enumerates the extra vulnerabilities that appear when an ISA
//! can invalidate a *specific* TLB entry (e.g. `mprotect()`-induced
//! shootdowns) but stops short of evaluating the secure designs against
//! them. This module does that evaluation — and it exposes a real gap:
//! the published RF TLB randomizes *fills* but not *invalidations*, so a
//! precise invalidation of a secure entry is deterministic and partially
//! observable. The [`InvalidationPolicy::RegionFlush`] extension (this
//! reproduction's addition) closes the gap by invalidating the whole
//! secure region in constant time whenever any secure page is invalidated.
//!
//! Final-step invalidations are timed through the *cycle* counter (an
//! invalidation of a present entry takes one extra cycle — the paper's
//! Flush + Flush discussion), while final-step accesses use the TLB-miss
//! counter as in the base benchmarks.
//!
//! [`InvalidationPolicy::RegionFlush`]: sectlb_tlb::InvalidationPolicy::RegionFlush

use sectlb_model::state::Actor;
use sectlb_sim::cpu::Instr;
use sectlb_sim::machine::{MachineBuilder, TlbDesign};
use sectlb_tlb::config::TlbConfig;
use sectlb_tlb::types::{SecureRegion, Vpn};
use sectlb_tlb::InvalidationPolicy;

use crate::generate::{ATTACKER_ASID, VICTIM_ASID};
use crate::oracle::OracleConfig;
use crate::run::Measurement;
use crate::spec::{Placement, SBASE};

/// One step of an extended benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtStep {
    /// Actor loads the known in-range address `a`.
    AccessA(Actor),
    /// The victim loads its secret address `u`.
    AccessU,
    /// The victim invalidates its secret page (`V_u^inv`).
    InvU,
    /// Actor invalidates the known address `a` in its own address space
    /// (`A_a^inv` / `V_a^inv`).
    InvA(Actor),
}

/// A representative extended vulnerability benchmark.
#[derive(Debug, Clone)]
pub struct ExtBenchmark {
    /// The Table 7 family this exercises.
    pub name: &'static str,
    /// The three-step pattern in the paper's notation.
    pub pattern: &'static str,
    /// Setup operations executed before the pattern (e.g. making the
    /// entry that step 1 invalidates resident in the first place).
    pub setup: Vec<ExtStep>,
    /// The three pattern steps; the last is the timed one.
    pub steps: [ExtStep; 3],
}

/// The evaluated design variants: the paper's three designs plus the RF
/// TLB with the region-flush invalidation extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtDesign {
    /// Standard set-associative TLB.
    Sa,
    /// Static-Partition TLB.
    Sp,
    /// Random-Fill TLB as published (precise invalidation).
    RfPrecise,
    /// Random-Fill TLB with the region-flush invalidation extension.
    RfRegionFlush,
}

impl ExtDesign {
    /// All evaluated variants.
    pub const ALL: [ExtDesign; 4] = [
        ExtDesign::Sa,
        ExtDesign::Sp,
        ExtDesign::RfPrecise,
        ExtDesign::RfRegionFlush,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ExtDesign::Sa => "SA",
            ExtDesign::Sp => "SP",
            ExtDesign::RfPrecise => "RF (precise inv)",
            ExtDesign::RfRegionFlush => "RF (region flush)",
        }
    }
}

/// The representative extended benchmarks, one per Table 7 family that
/// introduces new behavior (external variants that the ASID check already
/// kills are represented once).
pub fn extended_benchmarks() -> Vec<ExtBenchmark> {
    use Actor::{Attacker as A, Victim as V};
    use ExtStep::*;
    vec![
        ExtBenchmark {
            name: "TLB Flush + Probe (external)",
            pattern: "A_a ~> V_u^inv ~> A_a (slow)",
            setup: vec![AccessU],
            steps: [AccessA(A), InvU, AccessA(A)],
        },
        ExtBenchmark {
            name: "TLB Flush + Probe (internal)",
            pattern: "V_a ~> V_u^inv ~> V_a (slow)",
            setup: vec![AccessU],
            steps: [AccessA(V), InvU, AccessA(V)],
        },
        ExtBenchmark {
            name: "TLB Flush + Time (internal)",
            pattern: "V_u ~> V_a^inv ~> V_u (slow)",
            setup: vec![],
            steps: [AccessU, InvA(V), AccessU],
        },
        ExtBenchmark {
            name: "TLB Reload + Time (internal)",
            pattern: "V_u^inv ~> V_a ~> V_u (fast)",
            setup: vec![AccessU],
            steps: [InvU, AccessA(V), AccessU],
        },
        ExtBenchmark {
            name: "TLB Flush + Flush (internal)",
            pattern: "V_a ~> V_u^inv ~> V_a^inv (slow)",
            setup: vec![AccessU],
            steps: [AccessA(V), InvU, InvA(V)],
        },
        ExtBenchmark {
            name: "TLB Internal Collision (inv-primed)",
            pattern: "V_a^inv ~> V_u ~> V_a (fast)",
            setup: vec![AccessA(V)],
            steps: [InvA(V), AccessU, AccessA(V)],
        },
    ]
}

/// Secure region for the extended evaluation: 3 pages as in the base
/// non-contention benchmarks.
const SEC_PAGES: u64 = 3;

fn lower(step: ExtStep, u: Vpn, a: Vpn) -> Vec<Instr> {
    let asid = |actor| match actor {
        Actor::Victim => VICTIM_ASID,
        Actor::Attacker => ATTACKER_ASID,
    };
    match step {
        ExtStep::AccessA(actor) => vec![Instr::SetAsid(asid(actor)), Instr::Load(a.base_addr())],
        ExtStep::AccessU => vec![Instr::SetAsid(VICTIM_ASID), Instr::Load(u.base_addr())],
        ExtStep::InvU => vec![Instr::SetAsid(VICTIM_ASID), Instr::FlushPage(u.base_addr())],
        ExtStep::InvA(actor) => {
            vec![Instr::SetAsid(asid(actor)), Instr::FlushPage(a.base_addr())]
        }
    }
}

/// Runs one extended trial; returns `true` when the timed step was slow.
///
/// An armed `oracle` (sampled by seed) runs the shadow checker in
/// lockstep with a `tag|benchmark|design|placement|seed` reporting
/// context, and schedules the trial's planned corruption if any.
fn run_trial(
    bench: &ExtBenchmark,
    design: ExtDesign,
    placement: Placement,
    seed: u64,
    oracle: Option<OracleConfig>,
) -> bool {
    let (tlb_design, policy) = match design {
        ExtDesign::Sa => (TlbDesign::Sa, InvalidationPolicy::Precise),
        ExtDesign::Sp => (TlbDesign::Sp, InvalidationPolicy::Precise),
        ExtDesign::RfPrecise => (TlbDesign::Rf, InvalidationPolicy::Precise),
        ExtDesign::RfRegionFlush => (TlbDesign::Rf, InvalidationPolicy::RegionFlush),
    };
    let oracle = oracle.filter(|o| o.armed(seed));
    let mut b = MachineBuilder::new()
        .design(tlb_design)
        .tlb_config(TlbConfig::security_eval())
        .seed(seed)
        .rf_invalidation(policy);
    if oracle.is_some() {
        b = b.oracle(true);
    }
    let mut m = b.build();
    if let Some(o) = oracle {
        m.set_oracle_context(format!(
            "{}|{}|{}|{:?}|{:#x}",
            o.tag,
            bench.name,
            design.label(),
            placement,
            seed
        ));
        if let Some((op_index, selector, kind)) = o.corruption(seed) {
            m.schedule_corruption(op_index, selector, kind);
        }
    }
    let victim = m.os_mut().create_process();
    let attacker = m.os_mut().create_process();
    let region = SecureRegion::new(SBASE, SEC_PAGES);
    m.protect_victim(victim, region).expect("fresh machine");
    for asid in [victim, attacker] {
        m.os_mut().map_region(asid, SBASE, SEC_PAGES).ok();
    }
    let a = SBASE;
    let u = match placement {
        Placement::Mapped => a,
        Placement::NotMapped => SBASE.offset(1),
    };
    for &s in &bench.setup {
        for i in lower(s, u, a) {
            m.exec(i);
        }
    }
    let (prefix, last) = bench.steps.split_at(2);
    for &s in prefix {
        for i in lower(s, u, a) {
            m.exec(i);
        }
    }
    // Timed step: accesses observe the miss counter; invalidations observe
    // the cycle counter (present entries cost one extra cycle).
    let timed = lower(last[0], u, a);
    let (ctx, op) = timed.split_at(timed.len() - 1);
    for &i in ctx {
        m.exec(i);
    }
    let misses_before = m.tlb_misses();
    let cycles_before = m.stats().cycles;
    m.exec(op[0]);
    match op[0] {
        Instr::FlushPage(_) => m.stats().cycles - cycles_before > 1,
        _ => m.tlb_misses() > misses_before,
    }
}

/// Measures a contiguous range of extended-trial indices — the shard
/// unit [`run_extended_with_workers`] distributes over its pool.
///
/// The per-trial seed depends only on the trial index, so any sharding
/// of `0..trials` merges to the same totals.
fn run_extended_range(
    bench: &ExtBenchmark,
    design: ExtDesign,
    range: std::ops::Range<u32>,
    oracle: Option<OracleConfig>,
) -> Measurement {
    let mut n_mapped_miss = 0;
    let mut n_not_mapped_miss = 0;
    for t in range.clone() {
        let seed = (u64::from(t) << 4) ^ 0x0ec4_eded;
        if run_trial(bench, design, Placement::Mapped, seed, oracle) {
            n_mapped_miss += 1;
        }
        if run_trial(bench, design, Placement::NotMapped, seed ^ 1, oracle) {
            n_not_mapped_miss += 1;
        }
    }
    Measurement {
        trials: range.len() as u32,
        n_mapped_miss,
        n_not_mapped_miss,
    }
}

/// Measures one extended benchmark on one design variant (serially).
pub fn run_extended(bench: &ExtBenchmark, design: ExtDesign, trials: u32) -> Measurement {
    run_extended_oracle(bench, design, trials, None)
}

/// [`run_extended`] with optional shadow-oracle guardrails — the entry
/// point of the `table7_eval` driver's `--oracle` mode.
pub fn run_extended_oracle(
    bench: &ExtBenchmark,
    design: ExtDesign,
    trials: u32,
    oracle: Option<OracleConfig>,
) -> Measurement {
    run_extended_range(bench, design, 0..trials, oracle)
}

/// [`run_extended`] sharded across a worker pool; bitwise identical to
/// the serial path for any worker count.
pub fn run_extended_with_workers(
    bench: &ExtBenchmark,
    design: ExtDesign,
    trials: u32,
    workers: Option<std::num::NonZeroUsize>,
    oracle: Option<OracleConfig>,
) -> Measurement {
    let Some(workers) = workers else {
        return run_extended_oracle(bench, design, trials, oracle);
    };
    let chunks: Vec<std::ops::Range<u32>> = (0..trials)
        .step_by(crate::parallel::TRIALS_PER_SHARD as usize)
        .map(|lo| lo..(lo + crate::parallel::TRIALS_PER_SHARD).min(trials))
        .collect();
    let (partials, _stats) = crate::parallel::run_sharded(&chunks, workers, |range| {
        run_extended_range(bench, design, range.clone(), oracle)
    });
    partials
        .into_iter()
        .fold(Measurement::ZERO, Measurement::merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRIALS: u32 = 120;

    fn capacity(name: &str, design: ExtDesign) -> f64 {
        let bench = extended_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("no benchmark {name}"));
        run_extended(&bench, design, TRIALS).capacity()
    }

    #[test]
    fn external_flush_probe_is_defended_by_asids_everywhere() {
        for d in ExtDesign::ALL {
            let c = capacity("TLB Flush + Probe (external)", d);
            assert!(c < 0.05, "{}: C* = {c}", d.label());
        }
    }

    #[test]
    fn internal_flush_probe_breaks_sa_and_sp() {
        for d in [ExtDesign::Sa, ExtDesign::Sp] {
            let c = capacity("TLB Flush + Probe (internal)", d);
            assert!(c > 0.9, "{}: C* = {c}", d.label());
        }
    }

    #[test]
    fn precise_invalidation_leaks_on_the_published_rf() {
        // The gap: deterministic invalidation of a secure entry partially
        // re-correlates the attacker's observation with the secret.
        let c = capacity("TLB Flush + Probe (internal)", ExtDesign::RfPrecise);
        assert!(
            c > 0.05,
            "expected a measurable channel on precise-inv RF, got C* = {c}"
        );
    }

    #[test]
    fn region_flush_closes_the_invalidation_channels() {
        for name in [
            "TLB Flush + Probe (internal)",
            "TLB Flush + Time (internal)",
            "TLB Flush + Flush (internal)",
        ] {
            let c = capacity(name, ExtDesign::RfRegionFlush);
            assert!(c < 0.05, "{name}: C* = {c}");
        }
    }

    #[test]
    fn flush_flush_breaks_sa() {
        let c = capacity("TLB Flush + Flush (internal)", ExtDesign::Sa);
        assert!(c > 0.9, "C* = {c}");
    }

    #[test]
    fn inv_primed_collision_is_defended_by_rf_fill_randomization() {
        // Fill-path attacks stay defended even with precise invalidation:
        // the randomization the paper designed is doing its job.
        for d in [ExtDesign::RfPrecise, ExtDesign::RfRegionFlush] {
            let c = capacity("TLB Internal Collision (inv-primed)", d);
            assert!(c < 0.05, "{}: C* = {c}", d.label());
        }
        let c = capacity("TLB Internal Collision (inv-primed)", ExtDesign::Sa);
        assert!(c > 0.9, "SA should leak, C* = {c}");
    }

    #[test]
    fn six_families_are_covered() {
        assert_eq!(extended_benchmarks().len(), 6);
    }

    #[test]
    fn sharded_extended_runs_match_serial_bitwise() {
        let bench = &extended_benchmarks()[0];
        for design in [ExtDesign::Sa, ExtDesign::RfPrecise] {
            let serial = run_extended(bench, design, 60);
            for workers in [1usize, 3] {
                let w = std::num::NonZeroUsize::new(workers);
                let parallel = run_extended_with_workers(bench, design, 60, w, None);
                assert_eq!(parallel, serial, "workers={workers}");
            }
        }
    }
}
