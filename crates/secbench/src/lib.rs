//! Micro security benchmarks and channel-capacity analysis.
//!
//! This crate reproduces Section 5 of *Secure TLBs* (ISCA 2019):
//!
//! - [`capacity`] — the binary channel capacity of Equation (1);
//! - [`spec`] — per-vulnerability benchmark specifications (addresses,
//!   phase plans, mapped/not-mapped placements), mirroring the paper's
//!   semi-automatic generation of Figure 6-style assembly tests;
//! - [`generate`] — lowering a specification to an instruction stream for
//!   the simulated machine;
//! - [`run`] — the trial harness: 500 "mapped" + 500 "not mapped" runs per
//!   vulnerability per TLB design, miss-counter observations, and the
//!   empirical `p1*`, `p2*`, `C*`;
//! - [`parallel`] — the sharded campaign engine: the
//!   `(vulnerability, design, placement, trial-chunk)` space spread over
//!   scoped worker threads with bitwise-deterministic seeding, so any
//!   worker count (including the serial path) yields identical tables;
//! - [`scheduler`] — the work-stealing shard scheduler beneath both
//!   engines: per-worker deques (LIFO owner pop, FIFO steal) whose
//!   claim order never changes *what* runs, only *who* runs it;
//! - [`resilience`] — the fault-tolerant campaign engine: panic isolation
//!   with deterministic retry, shard quarantine, a stall watchdog, and a
//!   deterministic fault-injection harness for testing all of the above;
//! - [`supervisor`] — the resource-budgeted campaign supervisor:
//!   wall-clock deadlines, per-shard timeouts with cooperative
//!   preemption, and signal-safe graceful shutdown, all draining through
//!   the same flush-checkpoint-render-partial path;
//! - [`adaptive`] — sequential early stopping: a Hoeffding-bound
//!   confidence rectangle on `(p1*, p2*)` stops a cell's trials as soon
//!   as its defended/vulnerable verdict is statistically settled, while
//!   provably agreeing with the exhaustive run;
//! - [`checkpoint`] — crash-safe campaign checkpoints (checksummed
//!   frame, temp-file + atomic-rename + directory fsync, and a
//!   previous-good-generation chain) so a killed campaign resumes
//!   bitwise-identically even when the newest file is torn;
//! - [`iofault`] — deterministic I/O fault injection (torn writes, short
//!   reads, ENOSPC, failed renames) plus the durable-write and
//!   CRC-framing seam every on-disk format goes through;
//! - [`oracle`] — campaign-side shadow-oracle guardrails: sampled
//!   lockstep checking, `--inject-corruption` fault injection, SUSPECT
//!   cells, delta-debugged minimal repro files, and their replay;
//! - [`telemetry`] — the structured observability layer: a versioned
//!   JSONL event stream (shard lifecycle, supervisor decisions,
//!   checkpoint flushes, oracle violations) plus an aggregated metrics
//!   snapshot, both off by default and byte-invisible when disabled;
//! - [`service`] — the campaign service layer behind `campaignd`: job
//!   specs, a bounded priority queue with backpressure and load
//!   shedding, the unix-socket line protocol, and the crash-safe job
//!   manifest that lets a drained server resume bitwise-identically;
//! - [`theory`] — the theoretical `p1`, `p2`, `C` of Table 4, including
//!   the six combined Random-Fill TLB patterns of Section 5.3.1;
//! - [`extended`] — the Appendix B evaluation: targeted-invalidation
//!   attacks against every design, plus the region-flush countermeasure
//!   this reproduction adds;
//! - [`report`] — assembling and rendering the Table 4 comparison.
//!
//! # Example
//!
//! ```
//! use sectlb_secbench::run::{run_vulnerability, TrialSettings};
//! use sectlb_sim::machine::TlbDesign;
//!
//! let vuln = sectlb_model::enumerate_vulnerabilities()[0];
//! let mut settings = TrialSettings::default();
//! settings.trials = 50; // keep the doctest fast
//! let m = run_vulnerability(&vuln, TlbDesign::Sa, &settings);
//! // The first Table 2 row is an Internal Collision, which the SA TLB
//! // does not defend: the channel capacity is maximal.
//! assert!(m.capacity() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod capacity;
pub mod channel;
pub mod chaos;
pub mod checkpoint;
pub mod extended;
pub mod generate;
pub mod iofault;
pub mod mitigations;
pub mod oracle;
pub mod parallel;
pub mod report;
pub mod resilience;
pub mod run;
pub mod scheduler;
pub mod service;
pub mod spec;
pub mod supervisor;
pub mod telemetry;
pub mod theory;

pub use adaptive::{
    measure_cells_adaptive, measure_cells_adaptive_observed, AdaptiveOutcome, AdaptivePolicy,
    SequentialTest,
};
pub use capacity::binary_channel_capacity;
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy, Record, RecoveredLoad};
pub use iofault::{IoFault, IoFaultKind, IoInjector};
pub use oracle::{OracleConfig, OracleSummary, SuspectCell, EXIT_SUSPECT};
pub use parallel::{measure_cells, run_sharded, PoolStats, WorkerStats};
pub use resilience::{
    measure_cells_resilient, measure_cells_resilient_observed, run_sharded_resilient,
    run_sharded_resilient_observed, CampaignError, CampaignOutcome, CellOutcome, FaultPlan,
    ResilientRun, RunPolicy, ShardFailure, ShardOutcome, EXIT_QUARANTINED,
};
pub use run::{derive_trial_seed, run_vulnerability, Measurement, TrialSettings};
pub use scheduler::{Claim, StealQueues};
pub use service::{
    JobQueue, JobSpec, JobState, QueuedJob, Request, Response, ServiceError, SubmitError,
    HEARTBEAT_INTERVAL,
};
pub use spec::BenchmarkSpec;
pub use supervisor::{BudgetPolicy, StopReason, Supervisor, EXIT_BUDGET};
pub use telemetry::{Envelope, Event, PhaseTimings, Telemetry, SCHEMA_VERSION};
