//! Deterministic I/O fault injection and the durable-write seam.
//!
//! Every durability claim the campaign stack makes — checkpoints survive
//! `kill -9`, the `campaignd` manifest survives a drain, repro files are
//! never half-written — rests on a small set of filesystem idioms. This
//! module owns those idioms in one place and makes them *testable under
//! adversity*:
//!
//! - [`write_atomic`] — temp file, `fsync`, atomic rename, **parent
//!   directory `fsync`** (without the last step the rename itself can be
//!   lost on power failure: the file data is durable but the directory
//!   entry pointing at it is not).
//! - [`seal`] / [`unseal`] — a length-framed, double-checksummed envelope
//!   (header CRC32 + payload CRC32) so a torn or bit-flipped file is
//!   *detected* on load instead of parsed into garbage.
//! - [`write_generations`] — keeps the previous good generation at
//!   `<path>.prev` before overwriting, so a corrupt current file can be
//!   recovered from instead of aborting a week-long campaign.
//! - [`IoInjector`] — a deterministic fault injector threaded under the
//!   checkpoint, manifest, repro, and telemetry writes. Driven by the
//!   seeded fault plan (`--inject-io torn|short-read|enospc|rename-fail[:PM]`),
//!   it tears writes (prefix-only flush), truncates reads, fails writes
//!   with ENOSPC, or fails renames — keyed by a per-injector operation
//!   counter through the same `splitmix64` roll the shard-fault plan
//!   uses, so an injected run is exactly reproducible.
//!
//! The recovery contract built on top (see [`crate::checkpoint`]): a load
//! either succeeds bitwise-identically, falls back to the previous good
//! generation, or declares a fresh start — it never panics and never
//! silently accepts corrupt data.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::run::splitmix64;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
/// behind [`seal`]/[`unseal`]. Bitwise implementation: no table, no
/// dependency, fast enough for the short metadata files it protects.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Magic first token of a sealed frame (see [`seal`]).
pub const FRAME_MAGIC: &str = "secbench-frame v1";

/// Wraps `payload` in the length-framed, double-checksummed envelope:
///
/// ```text
/// secbench-frame v1 <payload-len> <payload-crc32> <header-crc32>
/// <payload bytes...>
/// ```
///
/// The header CRC covers the header itself (magic, length, payload CRC),
/// so a corrupted *header* is as detectable as a corrupted payload; the
/// payload CRC covers every payload byte. [`unseal`] verifies both.
pub fn seal(payload: &str) -> String {
    let head = format!(
        "{FRAME_MAGIC} {} {:08x}",
        payload.len(),
        crc32(payload.as_bytes())
    );
    format!("{head} {:08x}\n{payload}", crc32(head.as_bytes()))
}

/// Whether `text` begins with a [`seal`] envelope (used to keep loading
/// legacy, pre-frame files).
pub fn is_framed(text: &str) -> bool {
    text.starts_with(FRAME_MAGIC)
}

/// Verifies and strips a [`seal`] envelope, returning the payload.
///
/// # Errors
///
/// A human-readable reason when the header is missing or malformed,
/// either CRC mismatches, or the payload length disagrees with the
/// header — i.e. whenever the file cannot be trusted bitwise.
pub fn unseal(text: &str) -> Result<&str, String> {
    let (header, payload) = text
        .split_once('\n')
        .ok_or_else(|| "frame has no header line".to_owned())?;
    let rest = header
        .strip_prefix(FRAME_MAGIC)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| format!("missing `{FRAME_MAGIC}` header"))?;
    let mut tokens = rest.split(' ');
    let len: usize = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| "unparsable payload length".to_owned())?;
    let payload_crc = tokens
        .next()
        .and_then(|t| u32::from_str_radix(t, 16).ok())
        .ok_or_else(|| "unparsable payload CRC".to_owned())?;
    let header_crc = tokens
        .next()
        .and_then(|t| u32::from_str_radix(t, 16).ok())
        .ok_or_else(|| "unparsable header CRC".to_owned())?;
    if tokens.next().is_some() {
        return Err("trailing tokens after header CRC".to_owned());
    }
    let covered = &header[..header.len() - 9]; // strip " <8-hex-header-crc>"
    let actual_header = crc32(covered.as_bytes());
    if actual_header != header_crc {
        return Err(format!(
            "header CRC mismatch (stored {header_crc:08x}, computed {actual_header:08x})"
        ));
    }
    if payload.len() != len {
        return Err(format!(
            "payload truncated: header promises {len} bytes, file has {}",
            payload.len()
        ));
    }
    let actual_payload = crc32(payload.as_bytes());
    if actual_payload != payload_crc {
        return Err(format!(
            "payload CRC mismatch (stored {payload_crc:08x}, computed {actual_payload:08x})"
        ));
    }
    Ok(payload)
}

/// The injectable I/O fault classes of `--inject-io`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// A durable write flushes only a prefix of its bytes (what a crash
    /// between `write` and `fsync` leaves behind) but still reports
    /// success — the corruption is only discoverable on the next load.
    Torn,
    /// A read returns only a prefix of the file.
    ShortRead,
    /// A durable write fails outright with an out-of-space error.
    Enospc,
    /// The atomic rename publishing a durable write fails, leaving the
    /// temp file stranded and the target untouched.
    RenameFail,
}

impl IoFaultKind {
    /// The canonical flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            IoFaultKind::Torn => "torn",
            IoFaultKind::ShortRead => "short-read",
            IoFaultKind::Enospc => "enospc",
            IoFaultKind::RenameFail => "rename-fail",
        }
    }

    /// Parses the canonical flag spelling.
    pub fn parse(word: &str) -> Option<IoFaultKind> {
        match word {
            "torn" => Some(IoFaultKind::Torn),
            "short-read" => Some(IoFaultKind::ShortRead),
            "enospc" => Some(IoFaultKind::Enospc),
            "rename-fail" => Some(IoFaultKind::RenameFail),
            _ => None,
        }
    }
}

/// One configured I/O fault: which class, at what per-mille rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFault {
    /// The fault class.
    pub kind: IoFaultKind,
    /// Per-mille of matching operations that fault (1000 = every one).
    pub per_mille: u16,
}

struct InjectorState {
    seed: u64,
    fault: IoFault,
    ops: AtomicU64,
}

/// A cheap, cloneable handle deciding which durable I/O operations fault.
///
/// Deterministic: whether operation `n` of the configured class faults is
/// a pure function of `(seed, n)` via [`splitmix64`], mirroring the
/// shard-level `FaultPlan` rolls — an injected campaign replays exactly.
/// The disabled handle ([`IoInjector::disabled`]) is a no-op on every
/// path and is what all production callers pass by default.
#[derive(Clone, Default)]
pub struct IoInjector {
    inner: Option<Arc<InjectorState>>,
}

impl std::fmt::Debug for IoInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "IoInjector(disabled)"),
            Some(s) => write!(
                f,
                "IoInjector({} {}\u{2030}, seed {:#x})",
                s.fault.kind.as_str(),
                s.fault.per_mille,
                s.seed
            ),
        }
    }
}

impl IoInjector {
    /// A handle that injects nothing (the default).
    pub fn disabled() -> IoInjector {
        IoInjector::default()
    }

    /// A handle injecting `fault` at its configured rate, seeded like the
    /// shard fault plan.
    pub fn new(seed: u64, fault: IoFault) -> IoInjector {
        IoInjector {
            inner: Some(Arc::new(InjectorState {
                seed,
                fault,
                ops: AtomicU64::new(0),
            })),
        }
    }

    /// Whether any fault is configured.
    pub fn is_active(&self) -> bool {
        self.inner.as_ref().is_some_and(|s| s.fault.per_mille > 0)
    }

    /// Rolls the next operation of class `kind`: `true` means the fault
    /// fires. Operations of other classes are untouched (and do not
    /// advance the counter, so the sequence of *matching* operations is
    /// what the plan is keyed by).
    pub fn fires(&self, kind: IoFaultKind) -> bool {
        let Some(s) = &self.inner else { return false };
        if s.fault.kind != kind || s.fault.per_mille == 0 {
            return false;
        }
        let op = s.ops.fetch_add(1, Ordering::SeqCst);
        (splitmix64(splitmix64(s.seed ^ 0x10_fa17) ^ op) % 1000) < u64::from(s.fault.per_mille)
    }

    fn injected_error(&self, what: &str) -> io::Error {
        io::Error::other(format!("injected {what} (--inject-io)"))
    }
}

/// `fsync`s a directory, making previously renamed entries durable. A
/// no-op error-wise on filesystems that reject directory syncs.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

fn sync_parent(path: &Path) -> io::Result<()> {
    match path.parent() {
        // An empty parent means a bare relative filename: the CWD.
        Some(p) if p.as_os_str().is_empty() => sync_dir(Path::new(".")),
        Some(p) => sync_dir(p),
        None => Ok(()),
    }
}

/// The sibling temp path `write_atomic` stages through.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    PathBuf::from(tmp)
}

/// The previous-generation sibling of a generation-chained file
/// (`<path>.prev`).
pub fn prev_path(path: &Path) -> PathBuf {
    let mut prev = path.as_os_str().to_owned();
    prev.push(".prev");
    PathBuf::from(prev)
}

/// Writes `bytes` to `path` durably: sibling temp file, file `fsync`,
/// atomic rename, parent-directory `fsync`. A kill at any instant leaves
/// either the old complete file or the new complete one.
///
/// Under an active [`IoInjector`] the write may be torn (prefix-only,
/// reported as success — detected by [`unseal`] on the next load), fail
/// with ENOSPC, or have its rename fail; exactly one injection roll is
/// consumed per call.
///
/// # Errors
///
/// Propagates filesystem errors (and injected ENOSPC / rename failures).
pub fn write_atomic(path: &Path, bytes: &[u8], injector: &IoInjector) -> io::Result<()> {
    if injector.fires(IoFaultKind::Enospc) {
        return Err(injector.injected_error("ENOSPC"));
    }
    let flushed = if injector.fires(IoFaultKind::Torn) {
        &bytes[..bytes.len() / 2]
    } else {
        bytes
    };
    let tmp = tmp_path(path);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(flushed)?;
        file.sync_all()?;
    }
    if injector.fires(IoFaultKind::RenameFail) {
        // The stranded temp file is deliberate: that is exactly what a
        // real failed rename leaves for `verify` to report.
        return Err(injector.injected_error("rename failure"));
    }
    fs::rename(&tmp, path)?;
    sync_parent(path)
}

/// [`write_atomic`] with a generation chain: a *valid* existing current
/// file is rotated to `<path>.prev` first, so the last good generation
/// survives a torn overwrite. `valid` is the caller's format check
/// (typically [`unseal`] + parse); an invalid current file — torn by a
/// crash or by injection — is discarded rather than allowed to clobber
/// the good previous generation.
///
/// # Errors
///
/// Propagates filesystem errors from the rotation and the write.
pub fn write_generations(
    path: &Path,
    bytes: &[u8],
    injector: &IoInjector,
    valid: impl Fn(&str) -> bool,
) -> io::Result<()> {
    if let Ok(current) = fs::read_to_string(path) {
        if valid(&current) {
            fs::rename(path, prev_path(path))?;
            sync_parent(path)?;
        }
    }
    write_atomic(path, bytes, injector)
}

/// Reads `path` through the injection seam: an injected short read
/// returns only a prefix (cut at a char boundary), which the frame CRCs
/// then flag exactly like a torn write.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn read_to_string(path: &Path, injector: &IoInjector) -> io::Result<String> {
    let text = fs::read_to_string(path)?;
    if injector.fires(IoFaultKind::ShortRead) && !text.is_empty() {
        let mut cut = text.len() / 2;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        return Ok(text[..cut].to_owned());
    }
    Ok(text)
}

/// A [`Write`](io::Write) adapter applying the injection seam to a byte
/// stream (the telemetry JSONL sink): an injected write-class fault fails
/// the write, which the telemetry layer degrades on (disables its sink)
/// instead of taking the campaign down.
pub struct FaultyWriter<W> {
    inner: W,
    injector: IoInjector,
}

impl<W: io::Write> FaultyWriter<W> {
    /// Wraps `inner` with `injector`.
    pub fn new(inner: W, injector: IoInjector) -> FaultyWriter<W> {
        FaultyWriter { inner, injector }
    }
}

impl<W: io::Write> io::Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.injector.fires(IoFaultKind::Enospc) {
            return Err(self.injector.injected_error("ENOSPC"));
        }
        if self.injector.fires(IoFaultKind::Torn) {
            // Flush the prefix, then fail: a stream has no rename to
            // hide behind, so the caller must see the error.
            let _ = self.inner.write(&buf[..buf.len() / 2]);
            return Err(self.injector.injected_error("torn stream write"));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sectlb-iofault-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_unseal_round_trips_and_detects_damage() {
        for payload in [
            "",
            "x",
            "secbench-checkpoint v1\nsettings 00\n",
            "émoji ✓\n",
        ] {
            let sealed = seal(payload);
            assert!(is_framed(&sealed));
            assert_eq!(unseal(&sealed).expect("round-trips"), payload);
        }
        let sealed = seal("settings 00c0ffee\ntasks 3\n");
        // Truncation at every possible length is detected.
        for cut in 0..sealed.len() {
            assert!(unseal(&sealed[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Any single-byte flip is detected.
        let bytes = sealed.as_bytes();
        for i in 0..bytes.len() {
            let mut flipped = bytes.to_vec();
            flipped[i] ^= 0x01;
            if let Ok(text) = std::str::from_utf8(&flipped) {
                assert!(unseal(text).is_err(), "flip at {i} accepted");
            }
        }
    }

    #[test]
    fn disabled_injector_never_fires() {
        let inj = IoInjector::disabled();
        for _ in 0..100 {
            assert!(!inj.fires(IoFaultKind::Torn));
            assert!(!inj.fires(IoFaultKind::Enospc));
        }
        assert!(!inj.is_active());
    }

    #[test]
    fn injector_is_deterministic_and_rate_shaped() {
        let fires = |seed, pm, n| -> Vec<bool> {
            let inj = IoInjector::new(
                seed,
                IoFault {
                    kind: IoFaultKind::Torn,
                    per_mille: pm,
                },
            );
            (0..n).map(|_| inj.fires(IoFaultKind::Torn)).collect()
        };
        assert_eq!(fires(7, 500, 64), fires(7, 500, 64), "replays exactly");
        assert_ne!(fires(7, 500, 64), fires(8, 500, 64), "seed matters");
        assert!(fires(7, 1000, 64).iter().all(|&b| b), "1000‰ always fires");
        assert!(fires(7, 0, 64).iter().all(|&b| !b), "0‰ never fires");
        // Mismatched kinds neither fire nor consume rolls.
        let inj = IoInjector::new(
            7,
            IoFault {
                kind: IoFaultKind::Torn,
                per_mille: 1000,
            },
        );
        assert!(!inj.fires(IoFaultKind::Enospc));
        assert!(inj.fires(IoFaultKind::Torn));
    }

    #[test]
    fn write_atomic_round_trips_and_survives_injection() {
        let path = tmp("atomic");
        write_atomic(&path, b"hello\n", &IoInjector::disabled()).expect("writes");
        assert_eq!(fs::read_to_string(&path).expect("reads"), "hello\n");

        // ENOSPC: the write fails and the target is untouched.
        let enospc = IoInjector::new(
            1,
            IoFault {
                kind: IoFaultKind::Enospc,
                per_mille: 1000,
            },
        );
        assert!(write_atomic(&path, b"new\n", &enospc).is_err());
        assert_eq!(fs::read_to_string(&path).expect("reads"), "hello\n");

        // Torn: reported success, but only a prefix landed.
        let torn = IoInjector::new(
            1,
            IoFault {
                kind: IoFaultKind::Torn,
                per_mille: 1000,
            },
        );
        write_atomic(&path, b"0123456789", &torn).expect("torn writes report success");
        assert_eq!(fs::read_to_string(&path).expect("reads"), "01234");

        // Rename failure: target untouched, temp file stranded.
        let nofail = IoInjector::new(
            1,
            IoFault {
                kind: IoFaultKind::RenameFail,
                per_mille: 1000,
            },
        );
        assert!(write_atomic(&path, b"xxxx", &nofail).is_err());
        assert_eq!(fs::read_to_string(&path).expect("reads"), "01234");
        assert!(tmp_path(&path).exists(), "failed rename strands its temp");
        fs::remove_file(tmp_path(&path)).ok();
        fs::remove_file(&path).ok();
    }

    #[test]
    fn generations_rotate_only_valid_currents() {
        let path = tmp("gen");
        let prev = prev_path(&path);
        fs::remove_file(&path).ok();
        fs::remove_file(&prev).ok();
        let ok = |s: &str| unseal(s).is_ok();
        let inj = IoInjector::disabled();

        write_generations(&path, seal("one").as_bytes(), &inj, ok).expect("writes");
        assert!(!prev.exists(), "first write has nothing to rotate");
        write_generations(&path, seal("two").as_bytes(), &inj, ok).expect("writes");
        assert_eq!(unseal(&fs::read_to_string(&prev).expect("prev")), Ok("one"));
        assert_eq!(unseal(&fs::read_to_string(&path).expect("cur")), Ok("two"));

        // A corrupt current generation is discarded, not rotated: the
        // good previous generation survives.
        fs::write(&path, "garbage").expect("corrupts");
        write_generations(&path, seal("three").as_bytes(), &inj, ok).expect("writes");
        assert_eq!(unseal(&fs::read_to_string(&prev).expect("prev")), Ok("one"));
        assert_eq!(
            unseal(&fs::read_to_string(&path).expect("cur")),
            Ok("three")
        );
        fs::remove_file(&path).ok();
        fs::remove_file(&prev).ok();
    }

    #[test]
    fn short_reads_truncate_deterministically() {
        let path = tmp("short");
        fs::write(&path, "0123456789").expect("writes");
        let inj = IoInjector::new(
            3,
            IoFault {
                kind: IoFaultKind::ShortRead,
                per_mille: 1000,
            },
        );
        assert_eq!(read_to_string(&path, &inj).expect("reads"), "01234");
        assert_eq!(
            read_to_string(&path, &IoInjector::disabled()).expect("reads"),
            "0123456789"
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn faulty_writer_fails_writes_but_not_the_caller_contract() {
        use std::io::Write as _;
        let mut out = Vec::new();
        let mut w = FaultyWriter::new(
            &mut out,
            IoInjector::new(
                5,
                IoFault {
                    kind: IoFaultKind::Enospc,
                    per_mille: 1000,
                },
            ),
        );
        assert!(w.write(b"line\n").is_err());
        let mut w = FaultyWriter::new(&mut out, IoInjector::disabled());
        assert_eq!(w.write(b"line\n").expect("writes"), 5);
        assert_eq!(out, b"line\n");
    }

    #[test]
    fn fault_kind_spellings_round_trip() {
        for kind in [
            IoFaultKind::Torn,
            IoFaultKind::ShortRead,
            IoFaultKind::Enospc,
            IoFaultKind::RenameFail,
        ] {
            assert_eq!(IoFaultKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(IoFaultKind::parse("sparks"), None);
    }
}
