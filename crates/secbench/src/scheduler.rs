//! The work-stealing shard scheduler.
//!
//! The engines in [`crate::parallel`] and [`crate::resilience`] used to
//! hand out shards from a single atomic index: workers claimed tasks in
//! strict queue order, so a worker stuck behind an expensive shard (an
//! adaptive round's straggler cell, an injected stall, a preemption-bound
//! retry loop) left the rest of the pool idle once the tail of the queue
//! was drained. This module replaces that claim loop with per-worker
//! deques and classic work stealing:
//!
//! - every worker owns one deque, seeded with a contiguous chunk of the
//!   task list;
//! - an owner pops from the **back** of its own deque (LIFO — the chunk
//!   is stored reversed, so the owner still executes its tasks in
//!   ascending index order);
//! - an idle worker scans the other deques in ring order and steals from
//!   the **front** (FIFO — the end farthest from where the owner is
//!   working, minimizing contention on the hot end).
//!
//! # Determinism
//!
//! Stealing changes *which worker* runs a shard and *when*, never *what*
//! the shard computes: every trial seed is a pure function of its
//! coordinates ([`crate::run::derive_trial_seed`]), and shard results are
//! merged by commutative sums into per-task slots. Campaign output is
//! therefore bitwise identical for any worker count and any steal
//! schedule — the property `tests/scheduler_determinism.rs` pins by
//! forcing steals with injected stalls.
//!
//! # Reclamation
//!
//! [`StealQueues::push`] re-enqueues a task after the fact — the
//! supervision layer in [`crate::resilience`] uses it to hand a dead
//! worker's abandoned shard to a surviving worker, which re-executes it
//! from the same coordinate-derived seeds and produces the same result.
//!
//! The queues are plain `Mutex<VecDeque<_>>`s rather than lock-free
//! Chase-Lev deques: the crate forbids `unsafe`, shards are coarse
//! (≈[`crate::parallel::TRIALS_PER_SHARD`] simulated trials each), and a
//! handful of microsecond-scale lock acquisitions per shard is noise
//! against milliseconds of simulation.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One granted claim: which task, and whether it was stolen from another
/// worker's deque (steals are counted in
/// [`crate::parallel::WorkerStats::stolen`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    /// The claimed task index.
    pub task: usize,
    /// Whether the claim came from another worker's deque.
    pub stolen: bool,
}

/// Per-worker work-stealing deques over task indices.
#[derive(Debug)]
pub struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

/// Locks a deque even if a panicking thread poisoned it — the queue's
/// contents (plain indices) cannot be left in a broken state by any
/// operation this module performs.
fn lock(q: &Mutex<VecDeque<usize>>) -> MutexGuard<'_, VecDeque<usize>> {
    q.lock().unwrap_or_else(PoisonError::into_inner)
}

impl StealQueues {
    /// Builds `workers` deques seeded with contiguous chunks of `tasks`
    /// (worker `w` owns the `w`-th chunk; chunk sizes differ by at most
    /// one). Each chunk is stored reversed so the owner's LIFO pop walks
    /// it in ascending task order — the same order the old atomic-index
    /// queue produced for a lone worker.
    pub fn seed(workers: usize, tasks: &[usize]) -> StealQueues {
        let workers = workers.max(1);
        let base = tasks.len() / workers;
        let extra = tasks.len() % workers;
        let mut queues = Vec::with_capacity(workers);
        let mut lo = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            let chunk: VecDeque<usize> = tasks[lo..lo + len].iter().rev().copied().collect();
            queues.push(Mutex::new(chunk));
            lo += len;
        }
        StealQueues { queues }
    }

    /// The number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Claims a task for `worker`: its own deque first (LIFO), then the
    /// other deques in ring order starting at its right-hand neighbor
    /// (FIFO steal). `None` means every deque was empty *at the time each
    /// was inspected* — with [`StealQueues::push`] in play the caller
    /// decides whether to retry.
    pub fn claim(&self, worker: usize) -> Option<Claim> {
        if let Some(task) = lock(&self.queues[worker]).pop_back() {
            return Some(Claim {
                task,
                stolen: false,
            });
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(task) = lock(&self.queues[victim]).pop_front() {
                return Some(Claim { task, stolen: true });
            }
        }
        None
    }

    /// Re-enqueues `task` onto `worker`'s deque (at the owner's hot end,
    /// so it runs next there — or gets stolen by whoever is idle). Used
    /// by the supervision layer to reclaim a dead worker's shard.
    pub fn push(&self, worker: usize, task: usize) {
        lock(&self.queues[worker % self.queues.len()]).push_back(task);
    }

    /// Total tasks currently enqueued across all deques.
    pub fn remaining(&self) -> usize {
        self.queues.iter().map(|q| lock(q).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn indices(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn lone_worker_claims_in_ascending_task_order() {
        let q = StealQueues::seed(1, &indices(7));
        let order: Vec<usize> = std::iter::from_fn(|| q.claim(0)).map(|c| c.task).collect();
        assert_eq!(order, indices(7));
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn owners_walk_their_own_chunks_in_order_without_stealing() {
        let q = StealQueues::seed(3, &indices(8));
        // Chunks: 0..3, 3..6, 6..8 (sizes differ by at most one).
        for (w, chunk) in [(0, vec![0, 1, 2]), (1, vec![3, 4, 5]), (2, vec![6, 7])] {
            for expect in chunk {
                let claim = q.claim(w).expect("own chunk non-empty");
                assert_eq!((claim.task, claim.stolen), (expect, false));
            }
        }
        assert!(q.claim(0).is_none(), "every deque drained");
    }

    #[test]
    fn an_idle_worker_steals_from_the_victims_cold_end() {
        let q = StealQueues::seed(2, &indices(6));
        // Worker 1 drains its own chunk (3, 4, 5) ...
        for expect in [3, 4, 5] {
            assert_eq!(q.claim(1).expect("own").task, expect);
        }
        // ... then steals from worker 0's chunk, farthest-first: the
        // owner would pop 0 next, so the thief takes 2.
        let steal = q.claim(1).expect("steal");
        assert_eq!((steal.task, steal.stolen), (2, true));
        let own = q.claim(0).expect("own");
        assert_eq!((own.task, own.stolen), (0, false));
    }

    #[test]
    fn every_task_is_claimed_exactly_once_under_contention() {
        let tasks = indices(500);
        let q = StealQueues::seed(4, &tasks);
        let claimed: Vec<Mutex<Vec<usize>>> = (0..4).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let q = &q;
                let claimed = &claimed;
                scope.spawn(move || {
                    while let Some(claim) = q.claim(w) {
                        claimed[w].lock().expect("test lock").push(claim.task);
                    }
                });
            }
        });
        let mut all: Vec<usize> = claimed
            .iter()
            .flat_map(|c| c.lock().expect("test lock").clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, tasks, "each task claimed exactly once");
    }

    #[test]
    fn pushed_tasks_are_claimable_again() {
        let q = StealQueues::seed(2, &indices(2));
        assert_eq!(q.claim(0).expect("own").task, 0);
        assert_eq!(q.claim(1).expect("own").task, 1);
        assert!(q.claim(0).is_none());
        q.push(1, 0); // reclaim task 0 onto worker 1's deque
        assert_eq!(q.remaining(), 1);
        let claim = q.claim(0).expect("steals the reclaimed task");
        assert_eq!((claim.task, claim.stolen), (0, true));
    }

    #[test]
    fn seeding_more_workers_than_tasks_leaves_empty_deques() {
        let q = StealQueues::seed(8, &indices(3));
        assert_eq!(q.workers(), 8);
        let mut got: Vec<usize> = (0..3).map(|w| q.claim(w).expect("seeded").task).collect();
        got.sort_unstable();
        assert_eq!(got, indices(3));
        assert!((0..8).all(|w| q.claim(w).is_none()));
    }
}
