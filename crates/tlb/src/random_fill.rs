//! The Random-Fill (RF) TLB (Section 4.2 of the paper).
//!
//! The RF TLB de-correlates requested memory accesses from the entries
//! actually brought into the TLB, making the attacker's observations
//! non-deterministic. Hits behave exactly as in the SA TLB. Misses follow
//! the access-handling procedure of Figure 3, with `D` the requested
//! translation, `R` the entry the replacement policy would evict, and the
//! *Sec* bits `Sec_D`/`Sec_R` marking membership in the configured secure
//! region:
//!
//! - `Sec_R = 0, Sec_D = 0`: a normal TLB miss (walk and fill).
//! - `Sec_R = 1, Sec_D = 0`: the secure entry `R` is *not* evicted.
//!   Instead a random non-secure address `D'` — the request with its TLB
//!   set-index bits randomized within the secure region's set window — is
//!   filled, and the result of the `D` request is returned to the CPU
//!   directly through a one-entry buffer without filling ("no fill").
//! - `Sec_D = 1`: a random page `D'` within the secure region is filled
//!   (evicting that set's replacement choice `R'`), and `D` itself is
//!   again returned through the no-fill buffer.
//!
//! The random fill happens synchronously on the miss path: Section 4.2.3
//! explains why an asynchronous, idle-cycle filler (as in the Random Fill
//! *cache*) would starve under TLB-intensive secure workloads.

use crate::array::EntryArray;
use crate::check::{
    CorruptionKind, CorruptionReport, IntegrityError, IntegrityKind, SnapshotEntry,
};
use crate::config::TlbConfig;
use crate::rfe::RandomFillEngine;
use crate::stats::TlbStats;
use crate::store::{AosProfile, SoaProfile, StoreProfile};
use crate::tlb_trait::{sealed, AccessResult, TlbCore, Translator};
use crate::types::{Asid, SecureRegion, TlbEntry, Vpn};

pub use crate::types::SecureRegion as Region;

/// Which way a random fill replaces in its target set.
///
/// The paper's Section 5.3.1 probabilities imply a uniformly random way
/// ([`RandomFillEviction::RandomWay`], the default). Replacing the LRU way
/// instead re-correlates the eviction with the victim's access recency and
/// measurably leaks (see the `ablation_rf` study in EXPERIMENTS.md); the
/// variant is kept for that ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RandomFillEviction {
    /// Evict a uniformly random way (secure; the paper's design).
    #[default]
    RandomWay,
    /// Evict the set's replacement-policy choice (insecure ablation).
    LruWay,
}

/// How the RF TLB handles *targeted* invalidation of a secure page.
///
/// Appendix B of the paper shows that if an ISA lets software invalidate
/// a specific TLB entry, a new family of attacks appears (Flush + Probe,
/// Flush + Time, Flush + Flush). The RF TLB as published randomizes
/// *fills* but not *invalidations*, so a precise invalidation of a secure
/// entry is deterministic and observable. The `RegionFlush` policy closes
/// that channel: invalidating any page of the secure region invalidates
/// the whole region's entries in constant time, de-correlating the
/// invalidation from the specific secret address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvalidationPolicy {
    /// Invalidate exactly the requested entry (the published design).
    #[default]
    Precise,
    /// Invalidate every resident secure entry whenever any secure page is
    /// invalidated, and always take the slow (entry-present) path so the
    /// invalidation itself is constant-time.
    RegionFlush,
}

/// The Random-Fill TLB, generic over the entry-storage profile.
#[derive(Debug, Clone)]
pub struct RfTlbGen<P: StoreProfile = SoaProfile> {
    array: EntryArray<P>,
    stats: TlbStats,
    rfe: RandomFillEngine,
    victim_asid: Option<Asid>,
    region: Option<SecureRegion>,
    eviction: RandomFillEviction,
    invalidation: InvalidationPolicy,
}

/// The RF TLB on the struct-of-arrays fast path (the default).
pub type RfTlb = RfTlbGen<SoaProfile>;

/// The RF TLB on the pre-overhaul reference storage (differential tests).
pub type RfTlbRef = RfTlbGen<AosProfile>;

impl<P: StoreProfile> RfTlbGen<P> {
    /// Creates an RF TLB with a default RFE seed. No secure region is
    /// configured initially, so the design behaves exactly like an SA TLB
    /// until [`TlbCore::set_secure_region`] and
    /// [`TlbCore::set_victim_asid`] are programmed by the (trusted) OS.
    pub fn new(config: TlbConfig) -> RfTlbGen<P> {
        RfTlbGen::with_seed(config, 0x5ec7_1b5e)
    }

    /// Creates an RF TLB whose Random Fill Engine is seeded with `seed`
    /// (for reproducible simulation).
    pub fn with_seed(config: TlbConfig, seed: u64) -> RfTlbGen<P> {
        RfTlbGen {
            array: EntryArray::new(config),
            stats: TlbStats::new(),
            rfe: RandomFillEngine::from_seed(seed),
            victim_asid: None,
            region: None,
            eviction: RandomFillEviction::default(),
            invalidation: InvalidationPolicy::default(),
        }
    }

    /// Selects the secure-page invalidation policy (the Appendix B
    /// extension; the published design is [`InvalidationPolicy::Precise`]).
    pub fn set_invalidation_policy(&mut self, policy: InvalidationPolicy) {
        self.invalidation = policy;
    }

    /// The configured invalidation policy.
    pub fn invalidation_policy(&self) -> InvalidationPolicy {
        self.invalidation
    }

    /// Selects the random-fill eviction policy (ablation knob; the secure
    /// default is [`RandomFillEviction::RandomWay`]).
    pub fn set_random_fill_eviction(&mut self, eviction: RandomFillEviction) {
        self.eviction = eviction;
    }

    /// The configured random-fill eviction policy.
    pub fn random_fill_eviction(&self) -> RandomFillEviction {
        self.eviction
    }

    /// The currently programmed secure region.
    pub fn secure_region(&self) -> Option<SecureRegion> {
        self.region
    }

    /// The currently programmed victim process.
    pub fn victim_asid(&self) -> Option<Asid> {
        self.victim_asid
    }

    /// Whether `(asid, vpn)` falls within the protected secure region —
    /// the `Sec` classification of a request.
    pub fn is_secure(&self, asid: Asid, vpn: Vpn) -> bool {
        match (self.victim_asid, self.region) {
            (Some(victim), Some(region)) => asid == victim && region.contains(vpn),
            _ => false,
        }
    }

    /// Number of currently valid entries (diagnostics).
    pub fn resident_count(&self) -> usize {
        self.array.valid_entries().count()
    }

    /// Number of resident entries with the *Sec* bit set (diagnostics).
    pub fn resident_secure_count(&self) -> usize {
        self.array.valid_entries().filter(|e| e.sec).count()
    }

    /// Performs the random fill of `d_prime` on behalf of `asid`, evicting
    /// the replacement choice `R'` of its set. A faulting walk skips the
    /// fill (the paper assumes the OS pre-generates PTEs for RFE-visible
    /// addresses, footnote 5).
    fn random_fill(&mut self, asid: Asid, d_prime: Vpn, walker: &mut dyn Translator) -> u64 {
        let walk = walker.translate(asid, d_prime);
        if let Some(ppn) = walk.ppn {
            let sec = self.is_secure(asid, d_prime);
            let set = self.array.config().set_of(d_prime);
            // If D' is already resident we must not create a duplicate;
            // refresh its recency instead.
            if let Some((s, w)) = self.array.lookup(asid, d_prime) {
                self.array.touch(s, w);
            } else {
                let size = walk.size;
                // Random fills evict a uniformly random way (R' in the
                // paper): the eviction must be indeterministic, and the
                // Section 5.3.1 probabilities are uniform over the
                // window's entries. (The LruWay variant exists only for
                // the ablation showing that choice is load-bearing.)
                let way = match self.eviction {
                    RandomFillEviction::RandomWay => {
                        self.rfe.random_way(self.array.config().ways())
                    }
                    RandomFillEviction::LruWay => self.array.choose_victim(set),
                };
                let evicted = self.array.fill_at(
                    set,
                    way,
                    TlbEntry {
                        valid: true,
                        vpn: size.align(d_prime),
                        ppn,
                        asid,
                        sec,
                        size,
                    },
                );
                if evicted.is_some() {
                    self.stats.evictions += 1;
                }
            }
            self.stats.random_fills += 1;
        }
        walk.cycles
    }

    /// Walks the requested address and returns it through the no-fill
    /// buffer.
    fn no_fill_response(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        walker: &mut dyn Translator,
        extra_cycles: u64,
    ) -> AccessResult {
        let walk = walker.translate(asid, vpn);
        self.stats.no_fill_responses += 1;
        if walk.ppn.is_none() {
            self.stats.faults += 1;
        }
        AccessResult {
            hit: false,
            fault: walk.ppn.is_none(),
            ppn: walk.ppn,
            walk_cycles: extra_cycles + walk.cycles,
            size: walk.size,
        }
    }
}

impl<P: StoreProfile> sealed::Sealed for RfTlbGen<P> {}

impl<P: StoreProfile> TlbCore for RfTlbGen<P> {
    fn access(&mut self, asid: Asid, vpn: Vpn, walker: &mut dyn Translator) -> AccessResult {
        self.stats.accesses += 1;
        // TLB hit: identical to the SA TLB.
        if let Some((set, way)) = self.array.lookup(asid, vpn) {
            self.stats.hits += 1;
            self.array.touch(set, way);
            let e = self.array.entry(set, way);
            return AccessResult::hit_sized(e.ppn, e.size);
        }
        self.stats.misses += 1;
        let sec_d = self.is_secure(asid, vpn);
        // Probe (no fill) the replacement choice R of D's set for its Sec
        // bit — steps (1)-(3) of Figure 4b.
        let set = self.array.config().set_of(vpn);
        let r_way = self.array.choose_victim(set);
        let r = self.array.entry(set, r_way);
        let sec_r = r.valid && r.sec;

        match (sec_r, sec_d) {
            (false, false) => {
                // Normal TLB miss.
                let walk = walker.translate(asid, vpn);
                let Some(ppn) = walk.ppn else {
                    self.stats.faults += 1;
                    return AccessResult {
                        hit: false,
                        fault: true,
                        ppn: None,
                        walk_cycles: walk.cycles,
                        size: walk.size,
                    };
                };
                // The probed replacement choice R was for the base-page
                // set; a megapage translation indexes a different set, so
                // its victim way must be re-chosen there.
                let fill_set = self.array.set_of_sized(vpn, walk.size);
                let fill_way = if fill_set == set {
                    r_way
                } else {
                    self.array.choose_victim(fill_set)
                };
                let evicted = self.array.fill_at(
                    fill_set,
                    fill_way,
                    TlbEntry {
                        valid: true,
                        vpn: walk.size.align(vpn),
                        ppn,
                        asid,
                        sec: false,
                        size: walk.size,
                    },
                );
                self.stats.fills += 1;
                if evicted.is_some() {
                    self.stats.evictions += 1;
                }
                AccessResult {
                    hit: false,
                    fault: false,
                    ppn: Some(ppn),
                    walk_cycles: walk.cycles,
                    size: walk.size,
                }
            }
            (true, false) => {
                // R is secure: do not evict it. Random-fill a non-secure
                // D' with a randomized set index, then answer D directly.
                let region = self.region.expect("sec_r implies a programmed region");
                let d_prime = self
                    .rfe
                    .randomize_set_index(vpn, region, self.array.config());
                let fill_cycles = self.random_fill(asid, d_prime, walker);
                self.no_fill_response(asid, vpn, walker, fill_cycles)
            }
            (_, true) => {
                // Secure request: random-fill a random page of the secure
                // region, then answer D directly.
                let region = self.region.expect("sec_d implies a programmed region");
                let d_prime = self.rfe.random_secure_page(region);
                let fill_cycles = self.random_fill(asid, d_prime, walker);
                self.no_fill_response(asid, vpn, walker, fill_cycles)
            }
        }
    }

    fn probe(&self, asid: Asid, vpn: Vpn) -> bool {
        self.array.lookup(asid, vpn).is_some()
    }

    fn flush_all(&mut self) {
        self.array.clear();
        self.stats.flushes += 1;
    }

    fn flush_asid(&mut self, asid: Asid) {
        let removed = self.array.invalidate_matching(|e| e.asid == asid);
        self.stats.invalidations += removed;
    }

    fn flush_page(&mut self, asid: Asid, vpn: Vpn) -> bool {
        if self.invalidation == InvalidationPolicy::RegionFlush && self.is_secure(asid, vpn) {
            // De-correlate: drop every secure entry, constant (slow) time.
            let removed = self.array.invalidate_matching(|e| e.sec);
            self.stats.invalidations += removed;
            return true;
        }
        if let Some((set, way)) = self.array.lookup(asid, vpn) {
            self.array.invalidate_at(set, way);
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    fn stats(&self) -> &TlbStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn config(&self) -> TlbConfig {
        self.array.config()
    }

    fn design_name(&self) -> &'static str {
        "RF"
    }

    fn set_victim_asid(&mut self, victim: Option<Asid>) {
        if self.victim_asid != victim {
            self.flush_all();
        }
        self.victim_asid = victim;
    }

    fn set_secure_region(&mut self, region: Option<SecureRegion>) {
        if self.region != region {
            // Stale Sec bits from a previous region must not linger.
            self.flush_all();
        }
        self.region = region;
    }

    fn snapshot(&self) -> Vec<SnapshotEntry> {
        self.array.snapshot_level(0)
    }

    fn integrity(&self) -> Result<(), IntegrityError> {
        self.array.check_geometry()?;
        // Base entries carry an exact Sec classification of their own tag.
        // Megapage entries are skipped: their Sec bit is derived from the
        // unaligned fill address, not the aligned tag.
        for e in self.array.valid_entries() {
            if e.size != crate::types::PageSize::Base {
                continue;
            }
            let expected = self.is_secure(e.asid, e.vpn);
            if e.sec != expected {
                return Err(IntegrityError {
                    kind: IntegrityKind::SecBit,
                    detail: format!(
                        "RF entry ({}, {}) has Sec = {} but the programmed secure region \
                         (victim {:?}, region {:?}) implies Sec = {}",
                        e.asid, e.vpn, e.sec, self.victim_asid, self.region, expected
                    ),
                });
            }
        }
        Ok(())
    }

    fn corrupt_entry(&mut self, selector: u64, kind: CorruptionKind) -> Option<CorruptionReport> {
        self.array
            .corrupt_nth(selector, kind)
            .map(|(set, way, before, after)| CorruptionReport {
                level: 0,
                set,
                way,
                kind,
                before,
                after,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb_trait::WalkResult;
    use crate::types::Ppn;

    struct Ident;
    impl Translator for Ident {
        fn translate(&mut self, asid: Asid, vpn: Vpn) -> WalkResult {
            WalkResult::page(Ppn(vpn.0 + u64::from(asid.0) * 1_000_000), 60)
        }
    }

    const VICTIM: Asid = Asid(1);
    const ATTACKER: Asid = Asid(2);

    /// 32-entry, 8-way RF TLB with a 3-page secure region (the paper's
    /// security-evaluation setup).
    fn rf() -> RfTlb {
        let mut t = RfTlb::with_seed(TlbConfig::security_eval(), 1234);
        t.set_victim_asid(Some(VICTIM));
        t.set_secure_region(Some(SecureRegion::new(Vpn(0x100), 3)));
        t
    }

    #[test]
    fn behaves_like_sa_without_a_region() {
        let mut t = RfTlb::new(TlbConfig::sa(32, 4).unwrap());
        let r1 = t.access(Asid(3), Vpn(9), &mut Ident);
        assert!(!r1.hit);
        let r2 = t.access(Asid(3), Vpn(9), &mut Ident);
        assert!(r2.hit);
        assert_eq!(t.stats().random_fills, 0);
        assert_eq!(t.stats().no_fill_responses, 0);
    }

    #[test]
    fn secure_miss_never_fills_the_requested_page_directly() {
        // The no-fill invariant: a secure request is answered through the
        // buffer; only a *random* secure page enters the TLB. (The random
        // page may coincide with the request, so we check the fill is
        // drawn from the region, not that the request is absent.)
        let mut t = rf();
        let r = t.access(VICTIM, Vpn(0x100), &mut Ident);
        assert!(!r.hit && !r.fault);
        assert_eq!(t.stats().no_fill_responses, 1);
        assert_eq!(t.stats().random_fills, 1);
        assert_eq!(t.resident_secure_count(), 1);
    }

    #[test]
    fn secure_hits_behave_normally() {
        let mut t = rf();
        // Access until the random fill happens to bring in page 0x101.
        let mut resident = false;
        for _ in 0..200 {
            if t.probe(VICTIM, Vpn(0x101)) {
                resident = true;
                break;
            }
            t.access(VICTIM, Vpn(0x101), &mut Ident);
        }
        assert!(resident, "random fills should eventually cover the page");
        let r = t.access(VICTIM, Vpn(0x101), &mut Ident);
        assert!(r.hit, "hit path is unchanged");
    }

    #[test]
    fn random_fill_stays_in_region_for_secure_requests() {
        let mut t = rf();
        for _ in 0..100 {
            t.access(VICTIM, Vpn(0x102), &mut Ident);
        }
        // Every resident victim entry must be one of the 3 secure pages.
        // (The victim only ever requested secure pages.)
        assert!(t.resident_secure_count() <= 3);
        for p in [0x100u64, 0x101, 0x102] {
            // Not asserting presence of each — only that nothing outside
            // the region was filled for the victim.
            let _ = p;
        }
        assert!(t.resident_count() <= 3);
    }

    #[test]
    fn attacker_cannot_deterministically_evict_secure_entries() {
        // Sec_R = 1, Sec_D = 0: the attacker's conflicting fill is
        // redirected to a random set, so across many trials the secure
        // entry sometimes survives — unlike an SA TLB where eviction is
        // certain.
        let mut survived = 0;
        let trials = 100;
        for seed in 0..trials {
            let mut t = RfTlb::with_seed(TlbConfig::security_eval(), seed);
            t.set_victim_asid(Some(VICTIM));
            t.set_secure_region(Some(SecureRegion::new(Vpn(0x100), 3)));
            // Bring one secure page in deterministically: region of 3 with
            // repeated accesses until page 0x100 resident.
            for _ in 0..100 {
                if t.probe(VICTIM, Vpn(0x100)) {
                    break;
                }
                t.access(VICTIM, Vpn(0x100), &mut Ident);
            }
            assert!(t.probe(VICTIM, Vpn(0x100)));
            // Attacker floods the same set (set 0) with 8 ways' worth of
            // conflicting pages — would certainly evict on an SA TLB.
            for i in 0..8u64 {
                t.access(ATTACKER, Vpn(0x100 + i * 4), &mut Ident);
            }
            if t.probe(VICTIM, Vpn(0x100)) {
                survived += 1;
            }
        }
        assert!(
            survived > 0,
            "secure entry must sometimes survive attacker flooding"
        );
    }

    #[test]
    fn non_secure_misses_by_the_victim_outside_region_are_normal() {
        let mut t = rf();
        let r = t.access(VICTIM, Vpn(0x900), &mut Ident);
        assert!(!r.hit);
        assert!(t.probe(VICTIM, Vpn(0x900)), "normal fill happened");
        assert_eq!(t.stats().no_fill_responses, 0);
    }

    #[test]
    fn attacker_addresses_numerically_in_region_are_not_secure() {
        // The region belongs to the victim's address space: the Sec check
        // requires the victim ASID.
        let t = rf();
        assert!(t.is_secure(VICTIM, Vpn(0x100)));
        assert!(!t.is_secure(ATTACKER, Vpn(0x100)));
    }

    #[test]
    fn reprogramming_region_flushes_stale_sec_bits() {
        let mut t = rf();
        t.access(VICTIM, Vpn(0x100), &mut Ident);
        assert!(t.resident_secure_count() > 0);
        t.set_secure_region(Some(SecureRegion::new(Vpn(0x500), 4)));
        assert_eq!(t.resident_count(), 0);
    }

    #[test]
    fn no_duplicate_entry_when_random_fill_hits_resident_page() {
        let mut t = rf();
        // Exercise many secure accesses; duplicates would show up as more
        // than 3 resident secure entries.
        for i in 0..300u64 {
            t.access(VICTIM, Vpn(0x100 + (i % 3)), &mut Ident);
        }
        assert!(t.resident_secure_count() <= 3);
    }

    /// Flattened `(entry, rank)` pairs for every lane — entries from the
    /// store, ranks from the packed-LRU words the fast profile uses.
    fn lanes(t: &RfTlb) -> Vec<(TlbEntry, u16)> {
        let cfg = t.array.config();
        let mut out = Vec::with_capacity(cfg.entries());
        for s in 0..cfg.sets() {
            for w in 0..cfg.ways() {
                out.push((t.array.entry(s, w), t.array.lru().rank(s, w)));
            }
        }
        out
    }

    /// The packed-LRU regression the overhaul must not break: a no-fill
    /// (Sec-bit miss) access answers the request through the buffer
    /// without inserting it, so it must leave the rank state of every
    /// lane untouched *except* the single lane the accompanying random
    /// fill wrote or refreshed. A fast path that marked the probed
    /// victim R (or the requested set) "recently used" on these misses
    /// would skew every subsequent eviction — and the paper's Table 2 /
    /// Figure 7 RF results with it.
    #[test]
    fn no_fill_misses_leave_rank_state_untouched() {
        let mut t = RfTlb::with_seed(TlbConfig::sa(16, 4).unwrap(), 7);
        t.set_victim_asid(Some(VICTIM));
        t.set_secure_region(Some(SecureRegion::new(Vpn(0x100), 3)));
        let mut no_fill_misses = 0;
        for step in 0..400u64 {
            // Interleave secure misses (the Sec_D = 1 branch), attacker
            // pressure on the region's sets (driving the probed victim R
            // secure, the Sec_R = 1 branch), and attacker reuse.
            if step % 16 == 15 {
                // An ASID rollover evicts the victim's secure entries so
                // the Sec_D = 1 miss path keeps firing all run long.
                t.flush_asid(VICTIM);
            }
            let (asid, vpn) = match step % 4 {
                0 | 1 => (VICTIM, Vpn(0x100 + step % 3)),
                2 => (ATTACKER, Vpn(0x100 + 4 * (step % 5))),
                _ => (ATTACKER, Vpn(0x101 + 4 * (step % 5))),
            };
            let before = lanes(&t);
            let nf = t.stats().no_fill_responses;
            t.access(asid, vpn, &mut Ident);
            if t.stats().no_fill_responses == nf {
                continue; // hit or normal fill: recency updates expected
            }
            no_fill_misses += 1;
            let after = lanes(&t);
            let mut refreshed = 0;
            for ((e0, r0), (e1, r1)) in before.iter().zip(&after) {
                if e0 == e1 && r0 != r1 {
                    // Only the random fill's target D' may be refreshed
                    // in place — one lane, never the requested page.
                    refreshed += 1;
                    assert!(e1.valid, "rank of an empty lane moved");
                    assert_ne!(
                        (e1.asid, e1.vpn),
                        (asid, vpn),
                        "no-fill access touched the requested page's rank"
                    );
                }
            }
            assert!(
                refreshed <= 1,
                "no-fill miss refreshed {refreshed} lanes it did not fill"
            );
        }
        assert!(
            no_fill_misses > 20,
            "the interleaving must actually exercise the no-fill paths \
             (got {no_fill_misses})"
        );
    }

    #[test]
    fn miss_counter_reflects_slow_accesses() {
        // The security benchmarks read the miss counter as the timing
        // proxy; no-fill responses are misses (slow) too.
        let mut t = rf();
        t.access(VICTIM, Vpn(0x100), &mut Ident);
        assert_eq!(t.stats().misses, 1);
        assert!(t.stats().misses >= t.stats().no_fill_responses);
    }

    #[test]
    fn megapage_fills_choose_a_victim_in_their_own_set() {
        use crate::tlb_trait::WalkResult;
        // A walker that answers megapage translations for high addresses.
        struct MegaWalker;
        impl Translator for MegaWalker {
            fn translate(&mut self, _asid: Asid, vpn: Vpn) -> WalkResult {
                if vpn.0 >= 0x1000 {
                    WalkResult::mega(Ppn(7), 60)
                } else {
                    WalkResult::page(Ppn(vpn.0), 60)
                }
            }
        }
        let mut t = rf();
        // Fill the base sets with valid entries first, then a mega fill:
        // its victim way must come from the *mega* set's choice, never
        // displace an entry the base-set probe selected.
        for i in 0..8u64 {
            t.access(VICTIM, Vpn(0x900 + i), &mut MegaWalker);
        }
        let before = t.resident_count();
        let r = t.access(VICTIM, Vpn(0x1234), &mut MegaWalker);
        assert!(!r.hit && !r.fault);
        assert!(t.probe(VICTIM, Vpn(0x1200)), "mega entry resident");
        assert!(t.resident_count() >= before, "no spurious double-eviction");
        // A second access within the superpage hits it.
        assert!(t.access(VICTIM, Vpn(0x13ff), &mut MegaWalker).hit);
    }

    #[test]
    fn walk_cycles_cover_fill_and_response() {
        // A secure miss performs two walks (random fill + no-fill
        // response): its latency must exceed a normal miss's single walk.
        let mut t = rf();
        let secure_miss = t.access(VICTIM, Vpn(0x100), &mut Ident);
        let mut t2 = rf();
        let normal_miss = t2.access(VICTIM, Vpn(0x900), &mut Ident);
        assert!(secure_miss.walk_cycles > normal_miss.walk_cycles);
    }
}
