//! Core identifier types shared by the TLB designs and the system
//! simulator.

use std::fmt;

/// Size of a memory page in bytes (the paper uses standard 4 KiB pages).
pub const PAGE_SIZE: u64 = 4096;

/// Number of address bits within a page.
pub const PAGE_SHIFT: u32 = 12;

/// A virtual page number — a virtual address with the page offset removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// The virtual page containing a virtual address.
    pub fn of_addr(vaddr: u64) -> Vpn {
        Vpn(vaddr >> PAGE_SHIFT)
    }

    /// The base virtual address of this page.
    pub fn base_addr(self) -> u64 {
        self.0 << PAGE_SHIFT
    }

    /// The page `offset` pages after this one.
    pub fn offset(self, offset: u64) -> Vpn {
        Vpn(self.0 + offset)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

impl fmt::LowerHex for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A physical page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(pub u64);

impl Ppn {
    /// The base physical address of this frame.
    pub fn base_addr(self) -> u64 {
        self.0 << PAGE_SHIFT
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppn:{:#x}", self.0)
    }
}

impl fmt::LowerHex for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// An address-space identifier (the RISC-V ASID), distinguishing processes
/// in hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(pub u16);

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid:{}", self.0)
    }
}

/// Translation granularity: base 4 KiB pages, 2 MiB superpages (Sv39's
/// level-1 megapages), or 1 GiB gigapages (level-2). Commercial TLBs
/// support multiple page sizes with distinct per-class geometry; the
/// paper notes large pages for crypto libraries as a possible software
/// defense (Section 2.3) — superpage support lets the reproduction
/// evaluate that, and the page-size classes form the entry-class axis of
/// the multi-size split TLB design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageSize {
    /// A 4 KiB base page.
    #[default]
    Base,
    /// A 2 MiB megapage (512 base pages).
    Mega,
    /// A 1 GiB gigapage (512 × 512 base pages).
    Giga,
}

impl PageSize {
    /// Every page-size class, smallest first (the lookup probe order).
    pub const ALL: [PageSize; 3] = [PageSize::Base, PageSize::Mega, PageSize::Giga];

    /// Base pages covered by one translation of this size.
    pub fn span_pages(self) -> u64 {
        match self {
            PageSize::Base => 1,
            PageSize::Mega => 512,
            PageSize::Giga => 512 * 512,
        }
    }

    /// Bits of the base-page VPN below this size's frame number (0, 9,
    /// or 18): the shift the set index of a sized entry is taken above.
    pub fn span_shift(self) -> u32 {
        match self {
            PageSize::Base => 0,
            PageSize::Mega => 9,
            PageSize::Giga => 18,
        }
    }

    /// Aligns a VPN down to this size's boundary.
    pub fn align(self, vpn: Vpn) -> Vpn {
        Vpn(vpn.0 & !(self.span_pages() - 1))
    }

    /// Stable lowercase label ("4k" / "2m" / "1g").
    pub fn label(self) -> &'static str {
        match self {
            PageSize::Base => "4k",
            PageSize::Mega => "2m",
            PageSize::Giga => "1g",
        }
    }
}

/// One TLB entry: a cached `(vpn, asid) → ppn` translation plus the
/// Random-Fill TLB's *Sec* bit (Section 4.2.2 of the paper) and the
/// translation's page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TlbEntry {
    /// Whether this entry holds a valid translation.
    pub valid: bool,
    /// The virtual page number (aligned to the entry's page size).
    pub vpn: Vpn,
    /// The physical page number.
    pub ppn: Ppn,
    /// The owning address space.
    pub asid: Asid,
    /// The RF TLB's *Sec* bit: set when the translation is within the
    /// configured secure region. Always `false` in the SA and SP designs.
    pub sec: bool,
    /// The translation's page size.
    pub size: PageSize,
}

impl TlbEntry {
    /// An invalid (empty) entry.
    pub fn invalid() -> TlbEntry {
        TlbEntry::default()
    }

    /// Whether this entry matches a request: valid with both the page
    /// address (at the entry's granularity) and the process ID equal.
    pub fn matches(&self, asid: Asid, vpn: Vpn) -> bool {
        self.valid && self.vpn == self.size.align(vpn) && self.asid == asid
    }
}

/// The secure virtual-page region protected by the Random-Fill TLB.
///
/// The RF TLB adds registers holding the start (`sbase`) and size
/// (`ssize`, in pages) of the security-critical memory range; a trusted OS
/// programs them when a victim program needs protection (Section 4.2.2 of
/// the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecureRegion {
    /// First virtual page of the region (`sbase`).
    pub base: Vpn,
    /// Region length in pages (`ssize`).
    pub pages: u64,
}

/// Why a [`SecureRegion`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The region spans zero pages. An empty secure region is a
    /// configuration error, not a disabled one (use `Option::None` for
    /// "no region").
    Empty,
    /// `base + pages` overflows the virtual page-number space, so the
    /// region's upper bound is not representable.
    Overflow {
        /// The requested first page.
        base: Vpn,
        /// The requested length in pages.
        pages: u64,
    },
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::Empty => write!(f, "secure region must span at least one page"),
            RegionError::Overflow { base, pages } => write!(
                f,
                "secure region of {pages} pages at {base} overflows the page-number space"
            ),
        }
    }
}

impl std::error::Error for RegionError {}

impl SecureRegion {
    /// A region of `pages` pages starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`SecureRegion::try_new`] rejects.
    pub fn new(base: Vpn, pages: u64) -> SecureRegion {
        match SecureRegion::try_new(base, pages) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// A region of `pages` pages starting at `base`, rejecting degenerate
    /// geometry with a typed error.
    ///
    /// # Errors
    ///
    /// [`RegionError::Empty`] if `pages` is zero; [`RegionError::Overflow`]
    /// if the region's end page is not representable.
    pub fn try_new(base: Vpn, pages: u64) -> Result<SecureRegion, RegionError> {
        if pages == 0 {
            return Err(RegionError::Empty);
        }
        if base.0.checked_add(pages).is_none() {
            return Err(RegionError::Overflow { base, pages });
        }
        Ok(SecureRegion { base, pages })
    }

    /// Whether `vpn` lies within the region.
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn.0 >= self.base.0 && vpn.0 < self.base.0 + self.pages
    }

    /// Iterates over the region's pages.
    pub fn iter(&self) -> impl Iterator<Item = Vpn> + '_ {
        (0..self.pages).map(move |i| self.base.offset(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secure_region_bounds_are_half_open() {
        let r = SecureRegion::new(Vpn(10), 3);
        assert!(!r.contains(Vpn(9)));
        assert!(r.contains(Vpn(10)));
        assert!(r.contains(Vpn(12)));
        assert!(!r.contains(Vpn(13)));
        assert_eq!(r.iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn empty_secure_region_panics() {
        SecureRegion::new(Vpn(0), 0);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(SecureRegion::try_new(Vpn(0), 0), Err(RegionError::Empty));
        let overflow = SecureRegion::try_new(Vpn(u64::MAX), 2);
        assert!(matches!(overflow, Err(RegionError::Overflow { .. })));
        assert!(overflow
            .unwrap_err()
            .to_string()
            .contains("overflows the page-number space"));
        assert!(SecureRegion::try_new(Vpn(10), 3).is_ok());
    }

    #[test]
    fn vpn_of_addr_strips_the_page_offset() {
        assert_eq!(Vpn::of_addr(0x1234_5678), Vpn(0x12345));
        assert_eq!(Vpn::of_addr(0xfff), Vpn(0));
        assert_eq!(Vpn(0x12345).base_addr(), 0x1234_5000);
    }

    #[test]
    fn entry_matching_requires_valid_vpn_and_asid() {
        let e = TlbEntry {
            valid: true,
            vpn: Vpn(7),
            ppn: Ppn(9),
            asid: Asid(1),
            sec: false,
            size: PageSize::Base,
        };
        assert!(e.matches(Asid(1), Vpn(7)));
        assert!(!e.matches(Asid(2), Vpn(7)), "asid must match");
        assert!(!e.matches(Asid(1), Vpn(8)), "vpn must match");
        let mut inv = e;
        inv.valid = false;
        assert!(!inv.matches(Asid(1), Vpn(7)), "invalid never matches");
    }

    #[test]
    fn page_constants_are_consistent() {
        assert_eq!(1u64 << PAGE_SHIFT, PAGE_SIZE);
    }

    #[test]
    fn page_size_classes_are_consistent() {
        for size in PageSize::ALL {
            assert_eq!(size.span_pages(), 1 << size.span_shift());
            // Alignment clears exactly the span bits.
            let vpn = Vpn(0x7_3141_5926);
            assert_eq!(
                size.align(vpn).0,
                vpn.0 >> size.span_shift() << size.span_shift()
            );
            assert_eq!(size.align(size.align(vpn)), size.align(vpn));
        }
        assert_eq!(PageSize::Giga.span_pages(), 262_144);
    }

    #[test]
    fn giga_entries_match_at_gigapage_granularity() {
        let e = TlbEntry {
            valid: true,
            vpn: PageSize::Giga.align(Vpn(0x4_0000)),
            ppn: Ppn(0x9),
            asid: Asid(1),
            sec: false,
            size: PageSize::Giga,
        };
        assert!(e.matches(Asid(1), Vpn(0x4_0000)));
        assert!(e.matches(Asid(1), Vpn(0x7_ffff)), "whole gigapage matches");
        assert!(!e.matches(Asid(1), Vpn(0x8_0000)), "next gigapage misses");
    }
}
