//! Shared entry-array mechanics used by every TLB design.
//!
//! All three designs keep a `sets × ways` array of [`TlbEntry`]s with
//! per-set true-LRU state; they differ only in how fills choose a victim
//! way (partitioning, random filling). This module centralizes the common
//! lookup, fill, and invalidation machinery.
//!
//! The array is generic over a [`StoreProfile`], which selects both the
//! entry layout (struct-of-arrays fast path or the array-of-structs
//! reference) and the replacement-state representation (packed rank words
//! or reference timestamps). See `crate::store` for the profiles.

use crate::check::{CorruptionKind, IntegrityError, IntegrityKind, SnapshotEntry};
use crate::config::TlbConfig;
use crate::lru::Replacement;
use crate::store::{EntryStore, SoaProfile, StoreProfile};
use crate::types::{Asid, PageSize, TlbEntry, Vpn};

/// The `sets × ways` entry array plus replacement state.
#[derive(Debug, Clone)]
pub(crate) struct EntryArray<P: StoreProfile = SoaProfile> {
    config: TlbConfig,
    /// `sets * ways` entries, row-major by set.
    store: P::Store,
    lru: P::Lru,
    /// Resident megapage entries; lets [`EntryArray::lookup`] skip the
    /// second (megapage) probe on the hot path when there are none.
    mega_entries: usize,
    /// Resident gigapage entries, gating the third probe the same way.
    giga_entries: usize,
}

impl<P: StoreProfile> EntryArray<P> {
    pub(crate) fn new(config: TlbConfig) -> EntryArray<P> {
        EntryArray {
            config,
            store: P::Store::new(config.entries()),
            lru: P::Lru::new(config.sets(), config.ways()),
            mega_entries: 0,
            giga_entries: 0,
        }
    }

    pub(crate) fn config(&self) -> TlbConfig {
        self.config
    }

    fn index(&self, set: usize, way: usize) -> usize {
        set * self.config.ways() + way
    }

    pub(crate) fn entry(&self, set: usize, way: usize) -> TlbEntry {
        self.store.get(self.index(set, way))
    }

    /// The set an entry of the given page size indexes into. Large-page
    /// entries index with the set bits *above* their page offset, as
    /// multi-size hardware TLBs do.
    pub(crate) fn set_of_sized(&self, vpn: Vpn, size: PageSize) -> usize {
        self.config.set_of(Vpn(vpn.0 >> size.span_shift()))
    }

    /// Resident entries of a large-page class (gates that class's probe).
    fn resident_of(&self, size: PageSize) -> usize {
        match size {
            PageSize::Base => usize::MAX,
            PageSize::Mega => self.mega_entries,
            PageSize::Giga => self.giga_entries,
        }
    }

    /// Adjusts the per-class residency counters for a valid entry
    /// arriving (`+1`) or departing (`-1`).
    fn count_entry(&mut self, entry: &TlbEntry, arriving: bool) {
        let counter = match entry.size {
            PageSize::Base => return,
            PageSize::Mega => &mut self.mega_entries,
            PageSize::Giga => &mut self.giga_entries,
        };
        if arriving {
            *counter += 1;
        } else {
            *counter -= 1;
        }
    }

    /// Probes one page-size class for `(asid, vpn)`.
    fn probe_sized(&self, asid: Asid, vpn: Vpn, size: PageSize) -> Option<(usize, usize)> {
        let ways = self.config.ways();
        let aligned = size.align(vpn);
        let set = self.set_of_sized(vpn, size);
        let base = set * ways;
        (0..ways)
            .find(|&w| self.store.matches_sized(base + w, asid, aligned, size))
            .map(|w| (set, w))
    }

    /// Finds the way holding `(asid, vpn)`, if resident: a base-page probe
    /// in the page's set, then — only when entries of the class exist at
    /// all — a megapage probe in the superpage's set, then a gigapage
    /// probe.
    pub(crate) fn lookup(&self, asid: Asid, vpn: Vpn) -> Option<(usize, usize)> {
        let ways = self.config.ways();
        // Base-page probe: the common case, a straight scan over the
        // set's lanes.
        let set = self.config.set_of(vpn);
        let base = set * ways;
        for w in 0..ways {
            if self
                .store
                .matches_sized(base + w, asid, vpn, PageSize::Base)
            {
                return Some((set, w));
            }
        }
        for size in [PageSize::Mega, PageSize::Giga] {
            if self.resident_of(size) > 0 {
                if let Some(hit) = self.probe_sized(asid, vpn, size) {
                    return Some(hit);
                }
            }
        }
        None
    }

    /// Marks `(set, way)` most recently used.
    pub(crate) fn touch(&mut self, set: usize, way: usize) {
        self.lru.touch(set, way);
    }

    /// Read-only view of the replacement state, for the regression tests
    /// pinning "no-fill accesses leave rank state untouched".
    #[cfg(test)]
    pub(crate) fn lru(&self) -> &P::Lru {
        &self.lru
    }

    /// The way a fill into `set` would replace, considering only `ways`:
    /// an invalid way if one exists, otherwise the LRU way of the subset.
    ///
    /// Returns `None` for an empty subset.
    pub(crate) fn choose_victim_among(
        &self,
        set: usize,
        ways: impl Iterator<Item = usize> + Clone,
    ) -> Option<usize> {
        if let Some(w) = ways
            .clone()
            .find(|&w| !self.store.valid(self.index(set, w)))
        {
            return Some(w);
        }
        self.lru.lru_among(set, ways)
    }

    /// The way a fill into `set` would replace, over all ways.
    pub(crate) fn choose_victim(&self, set: usize) -> usize {
        self.choose_victim_among(set, 0..self.config.ways())
            .expect("a set always has ways")
    }

    /// Writes `entry` into `(set, way)`, returning the evicted valid entry
    /// if there was one, and marks the way most recently used.
    pub(crate) fn fill_at(&mut self, set: usize, way: usize, entry: TlbEntry) -> Option<TlbEntry> {
        let idx = self.index(set, way);
        let old = self.store.get(idx);
        if old.valid {
            self.count_entry(&old, false);
        }
        if entry.valid {
            self.count_entry(&entry, true);
        }
        self.store.set(idx, entry);
        self.lru.touch(set, way);
        old.valid.then_some(old)
    }

    /// Invalidates `(set, way)`; returns whether it held a valid entry.
    pub(crate) fn invalidate_at(&mut self, set: usize, way: usize) -> bool {
        let idx = self.index(set, way);
        let was_valid = self.store.valid(idx);
        if was_valid {
            let old = self.store.get(idx);
            self.count_entry(&old, false);
        }
        self.store.invalidate(idx);
        self.lru.reset(set, way);
        was_valid
    }

    /// Invalidates every entry.
    pub(crate) fn clear(&mut self) {
        self.store.clear();
        self.lru.reset_all();
        self.mega_entries = 0;
        self.giga_entries = 0;
    }

    /// Invalidates every entry but leaves the replacement ranks as they
    /// are — the flush-on-switch design's clear, which models a hardware
    /// flush that drops translations without resetting LRU metadata.
    pub(crate) fn clear_entries_keep_ranks(&mut self) {
        self.store.clear();
        self.mega_entries = 0;
        self.giga_entries = 0;
    }

    /// Whether the replacement state carries no residue: every rank as
    /// fresh as after construction. The `fence.t` clear-completeness
    /// invariant checks this.
    pub(crate) fn replacement_pristine(&self) -> bool {
        (0..self.config.sets()).all(|set| {
            // In a pristine set every way ranks equal-lowest, so the LRU
            // choice over any suffix is its first element.
            (0..self.config.ways())
                .all(|w| self.lru.lru_among(set, w..self.config.ways()) == Some(w))
        })
    }

    /// Invalidates all entries matching `pred`; returns how many were
    /// removed.
    pub(crate) fn invalidate_matching(&mut self, pred: impl Fn(&TlbEntry) -> bool) -> u64 {
        let mut removed = 0;
        for set in 0..self.config.sets() {
            for way in 0..self.config.ways() {
                let e = self.entry(set, way);
                if e.valid && pred(&e) {
                    self.invalidate_at(set, way);
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Iterates over all valid entries (testing/diagnostics).
    pub(crate) fn valid_entries(&self) -> impl Iterator<Item = TlbEntry> + '_ {
        (0..self.config.entries())
            .map(|i| self.store.get(i))
            .filter(|e| e.valid)
    }

    /// Structural dump of every valid entry, tagged with `level`, in
    /// deterministic set-major order.
    pub(crate) fn snapshot_level(&self, level: usize) -> Vec<SnapshotEntry> {
        let mut out = Vec::new();
        for set in 0..self.config.sets() {
            for way in 0..self.config.ways() {
                let e = self.entry(set, way);
                if e.valid {
                    out.push(SnapshotEntry {
                        level,
                        set,
                        way,
                        entry: e,
                    });
                }
            }
        }
        out
    }

    /// Checks the geometry invariants every design shares: each valid
    /// entry sits in the set its tag indexes, megapage tags are aligned,
    /// and no `(asid, vpn, size)` key is resident twice.
    pub(crate) fn check_geometry(&self) -> Result<(), IntegrityError> {
        let mut seen = std::collections::HashSet::new();
        for set in 0..self.config.sets() {
            for way in 0..self.config.ways() {
                let e = self.entry(set, way);
                if !e.valid {
                    continue;
                }
                if e.vpn != e.size.align(e.vpn) {
                    return Err(IntegrityError {
                        kind: IntegrityKind::Capacity,
                        detail: format!(
                            "{} entry ({}, {}) at set {set} way {way} is not \
                             {}-page aligned",
                            e.size.label(),
                            e.asid,
                            e.vpn,
                            e.size.span_pages()
                        ),
                    });
                }
                let home = self.set_of_sized(e.vpn, e.size);
                if home != set {
                    return Err(IntegrityError {
                        kind: IntegrityKind::Capacity,
                        detail: format!(
                            "entry ({}, {}) resides in set {set} way {way} but its tag \
                             indexes set {home}",
                            e.asid, e.vpn
                        ),
                    });
                }
                if !seen.insert((e.asid, e.vpn, e.size)) {
                    return Err(IntegrityError {
                        kind: IntegrityKind::Capacity,
                        detail: format!(
                            "duplicate entry for ({}, {}) at set {set} way {way}",
                            e.asid, e.vpn
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Deterministically corrupts the `selector`-th eligible valid entry
    /// (modulo the eligible count): flips the lowest bit of the entry's
    /// *sized* tag or of its PPN, or inverts the *Sec* bit. *Sec*
    /// corruption is confined to base-page entries, whose *Sec* bit has
    /// exact reference semantics. Returns the coordinates plus
    /// before/after images, or `None` when no entry is eligible.
    ///
    /// The tag flip is taken above the entry's page-size span
    /// (`vpn ^ (1 << span_shift)`): flipping raw bit 0 of a megapage or
    /// gigapage tag would only break its alignment — the entry could
    /// never match any aligned probe again, so the corruption degenerated
    /// to an invalidation instead of a wrong-translation fault. Flipping
    /// the sized tag's lowest bit moves the entry to a neighboring large
    /// page (and, with more than one set, out of its home set) exactly
    /// like the base-page flip does. For base pages `span_shift` is 0, so
    /// the historical behavior — and every 4 KiB-only golden output — is
    /// unchanged.
    pub(crate) fn corrupt_nth(
        &mut self,
        selector: u64,
        kind: CorruptionKind,
    ) -> Option<(usize, usize, TlbEntry, TlbEntry)> {
        let eligible: Vec<(usize, usize)> = (0..self.config.sets())
            .flat_map(|s| (0..self.config.ways()).map(move |w| (s, w)))
            .filter(|&(s, w)| {
                let e = self.entry(s, w);
                e.valid && (kind != CorruptionKind::Sec || e.size == PageSize::Base)
            })
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let (set, way) = eligible[(selector % eligible.len() as u64) as usize];
        let idx = self.index(set, way);
        let before = self.store.get(idx);
        let mut after = before;
        match kind {
            CorruptionKind::Tag => {
                after.vpn = Vpn(before.vpn.0 ^ (1 << before.size.span_shift()));
            }
            CorruptionKind::Ppn => after.ppn.0 ^= 1,
            CorruptionKind::Sec => after.sec = !before.sec,
        }
        self.store.set(idx, after);
        Some((set, way, before, after))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::AosProfile;
    use crate::types::Ppn;

    fn entry(asid: u16, vpn: u64) -> TlbEntry {
        TlbEntry {
            valid: true,
            vpn: Vpn(vpn),
            ppn: Ppn(vpn + 100),
            asid: Asid(asid),
            sec: false,
            size: PageSize::Base,
        }
    }

    #[test]
    fn lookup_finds_filled_entries() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(8, 2).unwrap());
        let e = entry(1, 5);
        let set = a.config().set_of(Vpn(5));
        let way = a.choose_victim(set);
        a.fill_at(set, way, e);
        assert_eq!(a.lookup(Asid(1), Vpn(5)), Some((set, way)));
        assert_eq!(a.lookup(Asid(2), Vpn(5)), None);
    }

    #[test]
    fn fills_prefer_invalid_ways() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(4, 4).unwrap());
        a.fill_at(0, 0, entry(1, 0));
        // Ways 1..3 still invalid; victim must be one of them, not way 0.
        assert_ne!(a.choose_victim(0), 0);
    }

    #[test]
    fn eviction_returns_the_old_entry() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(1, 1).unwrap());
        assert_eq!(a.fill_at(0, 0, entry(1, 0)), None);
        let evicted = a.fill_at(0, 0, entry(1, 4)).expect("way was valid");
        assert_eq!(evicted.vpn, Vpn(0));
    }

    #[test]
    fn invalidate_matching_counts_removals() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(8, 2).unwrap());
        for v in 0..8u64 {
            let set = a.config().set_of(Vpn(v));
            let way = a.choose_victim(set);
            a.fill_at(set, way, entry((v % 2) as u16, v));
        }
        let removed = a.invalidate_matching(|e| e.asid == Asid(0));
        assert_eq!(removed, 4);
        assert_eq!(a.valid_entries().count(), 4);
    }

    #[test]
    fn mega_counter_tracks_fills_and_invalidations() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(8, 2).unwrap());
        let mega = TlbEntry {
            valid: true,
            vpn: Vpn(0x200),
            ppn: Ppn(9),
            asid: Asid(1),
            sec: false,
            size: PageSize::Mega,
        };
        let set = a.set_of_sized(Vpn(0x200), PageSize::Mega);
        a.fill_at(set, 0, mega);
        assert_eq!(a.lookup(Asid(1), Vpn(0x2ff)), Some((set, 0)));
        // Overwriting the mega entry with a base entry must disable the
        // second probe again.
        a.fill_at(set, 0, entry(1, set as u64));
        assert_eq!(a.lookup(Asid(1), Vpn(0x2ff)), None);
        // And invalidation after a fresh mega fill.
        a.fill_at(set, 1, mega);
        assert!(a.lookup(Asid(1), Vpn(0x201)).is_some());
        a.invalidate_at(set, 1);
        assert_eq!(a.lookup(Asid(1), Vpn(0x201)), None);
    }

    fn sized(asid: u16, vpn: u64, size: PageSize) -> TlbEntry {
        TlbEntry {
            valid: true,
            vpn: size.align(Vpn(vpn)),
            ppn: Ppn(vpn % 97 + 7),
            asid: Asid(asid),
            sec: false,
            size,
        }
    }

    #[test]
    fn giga_counter_gates_the_third_probe() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(8, 2).unwrap());
        let giga = sized(1, 0x4_0000, PageSize::Giga);
        let set = a.set_of_sized(Vpn(0x4_0000), PageSize::Giga);
        a.fill_at(set, 0, giga);
        // Any page inside the gigapage hits it.
        assert_eq!(a.lookup(Asid(1), Vpn(0x4_1234)), Some((set, 0)));
        assert_eq!(a.lookup(Asid(2), Vpn(0x4_1234)), None);
        a.invalidate_at(set, 0);
        assert_eq!(a.lookup(Asid(1), Vpn(0x4_1234)), None);
        // Overwriting a giga entry with a base entry re-disables the probe.
        a.fill_at(set, 0, giga);
        a.fill_at(set, 0, entry(1, set as u64));
        assert_eq!(a.lookup(Asid(1), Vpn(0x4_1234)), None);
    }

    #[test]
    fn all_three_classes_coexist() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(8, 4).unwrap());
        for (vpn, size) in [
            (5, PageSize::Base),
            (0x200, PageSize::Mega),
            (0x4_0000, PageSize::Giga),
        ] {
            let set = a.set_of_sized(Vpn(vpn), size);
            let way = a.choose_victim(set);
            a.fill_at(set, way, sized(1, vpn, size));
        }
        assert!(a.lookup(Asid(1), Vpn(5)).is_some());
        assert!(a.lookup(Asid(1), Vpn(0x2aa)).is_some());
        assert!(a.lookup(Asid(1), Vpn(0x4_ffff)).is_some());
        a.check_geometry().unwrap();
    }

    #[test]
    fn entries_only_clear_keeps_replacement_ranks() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(4, 2).unwrap());
        a.fill_at(0, 0, entry(1, 0));
        a.fill_at(0, 1, entry(1, 4));
        a.touch(0, 0); // way 1 is now LRU
        assert!(!a.replacement_pristine());
        a.clear_entries_keep_ranks();
        assert_eq!(a.valid_entries().count(), 0);
        assert_eq!(a.lookup(Asid(1), Vpn(0)), None);
        assert!(
            !a.replacement_pristine(),
            "the entries-only clear must leave rank residue behind"
        );
        // A full clear erases the residue too.
        a.clear();
        assert!(a.replacement_pristine());
    }

    #[test]
    fn sized_tag_corruption_moves_large_tags_not_their_alignment() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(8, 2).unwrap());
        let set = a.set_of_sized(Vpn(0x400), PageSize::Mega);
        a.fill_at(set, 0, sized(1, 0x400, PageSize::Mega));
        let (_, _, before, after) = a.corrupt_nth(0, CorruptionKind::Tag).expect("eligible");
        // Regression: the flip used to hit raw bit 0, leaving a megapage
        // tag misaligned (a silent invalidation). It must move the tag by
        // one whole megapage and keep it aligned.
        assert_eq!(after.vpn, Vpn(before.vpn.0 ^ 0x200));
        assert_eq!(after.vpn, after.size.align(after.vpn));
        // The corrupted entry now sits outside its home set — the
        // geometry check catches exactly that.
        assert!(a.check_geometry().is_err());
    }

    #[test]
    fn base_tag_corruption_still_flips_bit_zero() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(8, 2).unwrap());
        a.fill_at(a.config().set_of(Vpn(6)), 0, entry(1, 6));
        let (_, _, before, after) = a.corrupt_nth(3, CorruptionKind::Tag).expect("eligible");
        assert_eq!(after.vpn, Vpn(before.vpn.0 ^ 1));
    }

    #[test]
    fn corruption_selector_enumerates_mixed_classes() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(8, 2).unwrap());
        let mut filled = 0;
        for (vpn, size) in [
            (3, PageSize::Base),
            (0x600, PageSize::Mega),
            (0x8_0000, PageSize::Giga),
        ] {
            let set = a.set_of_sized(Vpn(vpn), size);
            a.fill_at(set, a.choose_victim(set), sized(2, vpn, size));
            filled += 1;
        }
        assert_eq!(a.valid_entries().count(), filled);
        // Every selector must land on some eligible entry and flip its
        // sized tag, whatever the class mix.
        for selector in 0..6u64 {
            let mut probe = a.clone();
            let (_, _, before, after) = probe
                .corrupt_nth(selector, CorruptionKind::Tag)
                .expect("eligible");
            assert_eq!(after.vpn.0, before.vpn.0 ^ (1 << before.size.span_shift()));
        }
    }

    #[test]
    fn no_duplicate_entries_after_refill() {
        let mut a = EntryArray::<SoaProfile>::new(TlbConfig::sa(8, 4).unwrap());
        for _ in 0..3 {
            if a.lookup(Asid(1), Vpn(2)).is_none() {
                let set = a.config().set_of(Vpn(2));
                let way = a.choose_victim(set);
                a.fill_at(set, way, entry(1, 2));
            }
        }
        let dups = a
            .valid_entries()
            .filter(|e| e.matches(Asid(1), Vpn(2)))
            .count();
        assert_eq!(dups, 1);
    }

    /// The two store profiles must behave identically through the whole
    /// array API (fills, victim choices, invalidations, snapshots).
    #[test]
    fn profiles_agree_through_the_array_api() {
        let config = TlbConfig::sa(8, 2).unwrap();
        let mut fast = EntryArray::<SoaProfile>::new(config);
        let mut reference = EntryArray::<AosProfile>::new(config);
        for v in 0..24u64 {
            let vpn = Vpn(v % 12);
            let asid = Asid((v % 3) as u16);
            for a in [0u8, 1] {
                let (lf, lr) = (fast.lookup(asid, vpn), reference.lookup(asid, vpn));
                assert_eq!(lf, lr, "lookup diverged at step {v}.{a}");
                match lf {
                    Some((set, way)) => {
                        fast.touch(set, way);
                        reference.touch(set, way);
                    }
                    None => {
                        let set = config.set_of(vpn);
                        let (wf, wr) = (fast.choose_victim(set), reference.choose_victim(set));
                        assert_eq!(wf, wr, "victim diverged at step {v}.{a}");
                        let e = TlbEntry {
                            valid: true,
                            vpn,
                            ppn: Ppn(v + 100),
                            asid,
                            sec: false,
                            size: PageSize::Base,
                        };
                        assert_eq!(fast.fill_at(set, wf, e), reference.fill_at(set, wr, e));
                    }
                }
            }
            if v % 7 == 0 {
                assert_eq!(
                    fast.invalidate_matching(|e| e.asid == Asid(0)),
                    reference.invalidate_matching(|e| e.asid == Asid(0))
                );
            }
        }
        assert_eq!(fast.snapshot_level(0), reference.snapshot_level(0));
        fast.check_geometry().unwrap();
        reference.check_geometry().unwrap();
    }
}
