//! A two-level TLB hierarchy.
//!
//! Section 4 of the paper scopes its designs to the L1 D-TLB but notes
//! they apply to "other levels of TLB as well". This module composes two
//! designs into an L1 + L2 hierarchy: an L1 miss is serviced by the L2
//! (at [`TlbHierarchy::l2_latency`] cycles), and only an L2 miss walks the
//! page table. Any design can sit at either level — which lets the
//! reproduction demonstrate that protecting *only* the L1 leaks through
//! the L2 (see `sectlb-workloads::l2_attack`).
//!
//! The composition reuses the [`Translator`] interface: from the L1's
//! perspective, the L2 simply *is* its page-table walker.

use crate::check::{CorruptionKind, CorruptionReport, IntegrityError, SnapshotEntry};
use crate::config::TlbConfig;
use crate::stats::TlbStats;
use crate::tlb_trait::{sealed, AccessResult, TlbCore, Translator, WalkResult};
use crate::types::{Asid, SecureRegion, Vpn};

/// A two-level TLB: an L1 design backed by an L2 design.
pub struct TlbHierarchy {
    l1: Box<dyn TlbCore>,
    l2: Box<dyn TlbCore>,
    l2_latency: u64,
}

impl std::fmt::Debug for TlbHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlbHierarchy")
            .field("l1", &self.l1.design_name())
            .field("l2", &self.l2.design_name())
            .field("l2_latency", &self.l2_latency)
            .finish()
    }
}

/// Adapter presenting the L2 (plus the real walker behind it) as the L1's
/// page-table walker.
struct L2AsWalker<'a> {
    l2: &'a mut dyn TlbCore,
    walker: &'a mut dyn Translator,
    l2_latency: u64,
}

impl Translator for L2AsWalker<'_> {
    fn translate(&mut self, asid: Asid, vpn: Vpn) -> WalkResult {
        let r = self.l2.access(asid, vpn, self.walker);
        WalkResult {
            ppn: r.ppn,
            cycles: self.l2_latency + r.walk_cycles,
            size: r.size,
        }
    }
}

impl TlbHierarchy {
    /// Composes `l1` backed by `l2`, with an L2 hit costing `l2_latency`
    /// cycles.
    pub fn new(l1: Box<dyn TlbCore>, l2: Box<dyn TlbCore>, l2_latency: u64) -> TlbHierarchy {
        TlbHierarchy { l1, l2, l2_latency }
    }

    /// The L2 hit latency in cycles.
    pub fn l2_latency(&self) -> u64 {
        self.l2_latency
    }

    /// The L1 level.
    pub fn l1(&self) -> &dyn TlbCore {
        self.l1.as_ref()
    }

    /// The L2 level.
    pub fn l2(&self) -> &dyn TlbCore {
        self.l2.as_ref()
    }
}

impl sealed::Sealed for TlbHierarchy {}

impl TlbCore for TlbHierarchy {
    fn access(&mut self, asid: Asid, vpn: Vpn, walker: &mut dyn Translator) -> AccessResult {
        let mut backed = L2AsWalker {
            l2: self.l2.as_mut(),
            walker,
            l2_latency: self.l2_latency,
        };
        self.l1.access(asid, vpn, &mut backed)
    }

    fn probe(&self, asid: Asid, vpn: Vpn) -> bool {
        self.l1.probe(asid, vpn) || self.l2.probe(asid, vpn)
    }

    fn flush_all(&mut self) {
        self.l1.flush_all();
        self.l2.flush_all();
    }

    fn flush_asid(&mut self, asid: Asid) {
        self.l1.flush_asid(asid);
        self.l2.flush_asid(asid);
    }

    fn flush_page(&mut self, asid: Asid, vpn: Vpn) -> bool {
        // Shootdowns must clear every level; timing reflects either level
        // having held the entry.
        let in_l1 = self.l1.flush_page(asid, vpn);
        let in_l2 = self.l2.flush_page(asid, vpn);
        in_l1 || in_l2
    }

    fn stats(&self) -> &TlbStats {
        self.l1.stats()
    }

    fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
    }

    fn config(&self) -> TlbConfig {
        self.l1.config()
    }

    fn design_name(&self) -> &'static str {
        "L1+L2"
    }

    fn level_stats(&self, level: usize) -> Option<&TlbStats> {
        match level {
            0 => Some(self.l1.stats()),
            1 => Some(self.l2.stats()),
            _ => None,
        }
    }

    fn probe_level(&self, level: usize, asid: Asid, vpn: Vpn) -> Option<bool> {
        match level {
            0 => Some(self.l1.probe(asid, vpn)),
            1 => Some(self.l2.probe(asid, vpn)),
            _ => None,
        }
    }

    fn on_context_switch(&mut self) {
        self.l1.on_context_switch();
        self.l2.on_context_switch();
    }

    fn replacement_pristine(&self) -> Option<bool> {
        // The hierarchy claims pristineness only where a level claims it;
        // a claiming level must hold (non-temporal levels stay `None`).
        match (
            self.l1.replacement_pristine(),
            self.l2.replacement_pristine(),
        ) {
            (None, None) => None,
            (a, b) => Some(a != Some(false) && b != Some(false)),
        }
    }

    fn set_victim_asid(&mut self, victim: Option<Asid>) {
        self.l1.set_victim_asid(victim);
        self.l2.set_victim_asid(victim);
    }

    fn set_secure_region(&mut self, region: Option<SecureRegion>) {
        self.l1.set_secure_region(region);
        self.l2.set_secure_region(region);
    }

    fn snapshot(&self) -> Vec<SnapshotEntry> {
        let mut out = self.l1.snapshot();
        out.extend(self.l2.snapshot().into_iter().map(|mut s| {
            s.level += 1;
            s
        }));
        out
    }

    fn integrity(&self) -> Result<(), IntegrityError> {
        self.l1.integrity().map_err(|mut e| {
            e.detail = format!("L1: {}", e.detail);
            e
        })?;
        self.l2.integrity().map_err(|mut e| {
            e.detail = format!("L2: {}", e.detail);
            e
        })
    }

    fn corrupt_entry(&mut self, selector: u64, kind: CorruptionKind) -> Option<CorruptionReport> {
        self.l1.corrupt_entry(selector, kind).or_else(|| {
            self.l2.corrupt_entry(selector, kind).map(|mut r| {
                r.level += 1;
                r
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_assoc::SaTlb;
    use crate::types::Ppn;
    use crate::RfTlb;

    struct Ident;
    impl Translator for Ident {
        fn translate(&mut self, _asid: Asid, vpn: Vpn) -> WalkResult {
            WalkResult::page(Ppn(vpn.0 + 7), 60)
        }
    }

    fn hierarchy() -> TlbHierarchy {
        TlbHierarchy::new(
            Box::new(SaTlb::new(TlbConfig::sa(8, 4).expect("valid"))),
            Box::new(SaTlb::new(TlbConfig::sa(64, 4).expect("valid"))),
            8,
        )
    }

    #[test]
    fn three_latency_classes() {
        let mut h = hierarchy();
        let (asid, vpn) = (Asid(1), Vpn(0x40));
        // Cold: L1 miss + L2 miss + walk.
        let cold = h.access(asid, vpn, &mut Ident);
        assert!(!cold.hit);
        assert_eq!(cold.walk_cycles, 8 + 60);
        // Warm: L1 hit, free.
        let warm = h.access(asid, vpn, &mut Ident);
        assert!(warm.hit);
        assert_eq!(warm.walk_cycles, 0);
        // Evict from L1 only (small L1, big L2): L2 hit.
        for i in 1..=8u64 {
            h.access(asid, Vpn(0x40 + i * 2), &mut Ident); // same L1 set
        }
        assert!(!h.l1().probe(asid, vpn));
        assert!(h.l2().probe(asid, vpn));
        let l2_hit = h.access(asid, vpn, &mut Ident);
        assert!(!l2_hit.hit, "an L1 miss, even if L2 hits");
        assert_eq!(l2_hit.walk_cycles, 8, "L2 hit pays only the L2 latency");
    }

    #[test]
    fn level_stats_distinguish_levels() {
        let mut h = hierarchy();
        h.access(Asid(1), Vpn(1), &mut Ident);
        h.access(Asid(1), Vpn(1), &mut Ident);
        assert_eq!(h.level_stats(0).expect("L1").accesses, 2);
        assert_eq!(h.level_stats(1).expect("L2").accesses, 1, "only the miss");
        assert!(h.level_stats(2).is_none());
    }

    #[test]
    fn flushes_cascade_to_both_levels() {
        let mut h = hierarchy();
        h.access(Asid(1), Vpn(5), &mut Ident);
        assert!(h.probe(Asid(1), Vpn(5)));
        h.flush_all();
        assert!(!h.l1().probe(Asid(1), Vpn(5)));
        assert!(!h.l2().probe(Asid(1), Vpn(5)));
        // Targeted shootdown clears both levels too.
        h.access(Asid(1), Vpn(5), &mut Ident);
        assert!(h.flush_page(Asid(1), Vpn(5)));
        assert!(!h.probe(Asid(1), Vpn(5)));
    }

    #[test]
    fn rf_l1_leaks_secure_translations_into_an_sa_l2() {
        // The hierarchy-security hazard: the RF L1 never caches a secure
        // translation, but its no-fill lookups flow through the L2, which
        // caches them deterministically.
        // Seed chosen so the RFE's random fill picks a page other than the
        // requested one (the fill may coincidentally pick 0x100 itself
        // under other seeds, which would make the L1 check vacuous).
        let mut l1 = RfTlb::with_seed(TlbConfig::sa(8, 4).expect("valid"), 1);
        l1.set_victim_asid(Some(Asid(1)));
        l1.set_secure_region(Some(SecureRegion::new(Vpn(0x100), 3)));
        let l2 = SaTlb::new(TlbConfig::sa(64, 4).expect("valid"));
        let mut h = TlbHierarchy::new(Box::new(l1), Box::new(l2), 8);
        h.access(Asid(1), Vpn(0x100), &mut Ident);
        assert!(
            !h.l1().probe(Asid(1), Vpn(0x100)),
            "RF L1 does not fill the requested page under this seed"
        );
        assert!(
            h.l2().probe(Asid(1), Vpn(0x100)),
            "...but the SA L2 now holds the secret translation"
        );
    }

    #[test]
    fn rf_at_both_levels_closes_the_leak() {
        let mk_rf = |seed| {
            let mut t = RfTlb::with_seed(TlbConfig::sa(8, 4).expect("valid"), seed);
            t.set_victim_asid(Some(Asid(1)));
            t.set_secure_region(Some(SecureRegion::new(Vpn(0x100), 3)));
            t
        };
        let mut h = TlbHierarchy::new(Box::new(mk_rf(3)), Box::new(mk_rf(5)), 8);
        // The request itself is served through no-fill buffers at both
        // levels; only *random* secure pages may become resident.
        let r = h.access(Asid(1), Vpn(0x100), &mut Ident);
        assert!(!r.hit && !r.fault);
        // Whether 0x102 became resident is up to the fill RNG; probing
        // must simply not fault either way.
        let _ = h.l1().probe(Asid(1), Vpn(0x102));
        // Deterministic statement: the L2's fill for the *requested* page
        // never happened directly — its no-fill counter advanced.
        assert!(h.level_stats(1).expect("L2").no_fill_responses >= 1);
    }
}
