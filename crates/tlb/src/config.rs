//! TLB geometry configuration.
//!
//! Section 6.2 of the paper evaluates seven L1 D-TLB configurations:
//! a 1-entry TLB (`1E`, approximating a disabled TLB), and 32- and
//! 128-entry TLBs that are fully associative (`FA`), 2-way (`2W`), or
//! 4-way (`4W`) set-associative. The security evaluation of Section 5.3
//! uses an 8-way, 4-set (32-entry) TLB.

use std::fmt;

use crate::types::Vpn;

/// The associativity organization of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlbOrg {
    /// Fully associative: a single set containing every entry.
    FullyAssociative,
    /// Set associative with the given number of ways per set.
    SetAssociative {
        /// Entries per set.
        ways: usize,
    },
}

/// Geometry of a TLB: total entries and organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    entries: usize,
    ways: usize,
}

/// Error building an invalid TLB configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid TLB configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl TlbConfig {
    /// A set-associative TLB with `entries` total entries and `ways` ways
    /// per set.
    ///
    /// # Errors
    ///
    /// Fails when `entries` is zero, `ways` is zero, `ways` does not divide
    /// `entries`, or the resulting set count is not a power of two (the
    /// hardware indexes sets with low VPN bits).
    pub fn sa(entries: usize, ways: usize) -> Result<TlbConfig, ConfigError> {
        if entries == 0 || ways == 0 {
            return Err(ConfigError("entries and ways must be nonzero".into()));
        }
        if !entries.is_multiple_of(ways) {
            return Err(ConfigError(format!(
                "{ways} ways do not evenly divide {entries} entries"
            )));
        }
        let sets = entries / ways;
        if !sets.is_power_of_two() {
            return Err(ConfigError(format!("{sets} sets is not a power of two")));
        }
        Ok(TlbConfig { entries, ways })
    }

    /// A fully associative TLB with `entries` entries.
    ///
    /// # Errors
    ///
    /// Fails when `entries` is zero.
    pub fn fa(entries: usize) -> Result<TlbConfig, ConfigError> {
        if entries == 0 {
            return Err(ConfigError("entries must be nonzero".into()));
        }
        Ok(TlbConfig {
            entries,
            ways: entries,
        })
    }

    /// The single-entry TLB (`1E`), the paper's closest approximation of
    /// running with the TLB disabled.
    pub fn single_entry() -> TlbConfig {
        TlbConfig {
            entries: 1,
            ways: 1,
        }
    }

    /// Total number of entries.
    pub fn entries(self) -> usize {
        self.entries
    }

    /// Ways per set.
    pub fn ways(self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn sets(self) -> usize {
        self.entries / self.ways
    }

    /// The organization of this configuration.
    pub fn org(self) -> TlbOrg {
        if self.ways == self.entries {
            TlbOrg::FullyAssociative
        } else {
            TlbOrg::SetAssociative { ways: self.ways }
        }
    }

    /// The set a virtual page maps to (low VPN bits, as in the paper's
    /// footnote 6, where the "TLB set index" bits of the address are
    /// randomized).
    pub fn set_of(self, vpn: Vpn) -> usize {
        (vpn.0 as usize) & (self.sets() - 1)
    }

    /// The label used for this configuration in the paper's figures
    /// (`1E`, `FA 32`, `2W 32`, `4W 32`, `FA 128`, `2W 128`, `4W 128`, or
    /// the generic `<ways>W <entries>` / `<ways>W/<sets>S` forms).
    pub fn label(self) -> String {
        if self.entries == 1 {
            "1E".to_owned()
        } else if self.ways == self.entries {
            format!("FA {}", self.entries)
        } else {
            format!("{}W {}", self.ways, self.entries)
        }
    }

    /// The seven configurations evaluated in Section 6 of the paper, in
    /// figure order: `1E, FA 32, 2W 32, 4W 32, FA 128, 2W 128, 4W 128`.
    pub fn paper_performance_configs() -> Vec<TlbConfig> {
        vec![
            TlbConfig::single_entry(),
            TlbConfig::fa(32).expect("valid"),
            TlbConfig::sa(32, 2).expect("valid"),
            TlbConfig::sa(32, 4).expect("valid"),
            TlbConfig::fa(128).expect("valid"),
            TlbConfig::sa(128, 2).expect("valid"),
            TlbConfig::sa(128, 4).expect("valid"),
        ]
    }

    /// The configuration used by the paper's security evaluation
    /// (Section 5.3): 32 entries, 8 ways, 4 sets.
    pub fn security_eval() -> TlbConfig {
        TlbConfig::sa(32, 8).expect("valid")
    }
}

/// Per-page-size-class geometry for the multi-size split TLB: one
/// independent `sets × ways` array per translation granularity, the way
/// commercial cores provision separate 4 KiB / 2 MiB / 1 GiB structures
/// (e.g. Skylake's 64-entry 4K, 32-entry 2M, 4-entry 1G L1 D-TLBs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MultiConfig {
    /// Geometry of the 4 KiB class.
    pub base: TlbConfig,
    /// Geometry of the 2 MiB class.
    pub mega: TlbConfig,
    /// Geometry of the 1 GiB class.
    pub giga: TlbConfig,
}

impl MultiConfig {
    /// A realistic desktop-class split: 64×4-way 4K, 32×4-way 2M, and a
    /// fully-associative 4-entry 1G class.
    pub fn realistic() -> MultiConfig {
        MultiConfig {
            base: TlbConfig::sa(256, 4).expect("valid"),
            mega: TlbConfig::sa(32, 4).expect("valid"),
            giga: TlbConfig::fa(4).expect("valid"),
        }
    }

    /// A split whose 4 KiB class uses `base` verbatim, with small fixed
    /// large-page classes behind it. With the security-evaluation base
    /// geometry, 4 KiB-only workloads exercise exactly the base class —
    /// the property the campaign's closed-form theory relies on.
    pub fn from_base(base: TlbConfig) -> MultiConfig {
        MultiConfig {
            base,
            mega: TlbConfig::sa(16, 4).expect("valid"),
            giga: TlbConfig::fa(4).expect("valid"),
        }
    }

    /// The geometry of one page-size class.
    pub fn class(&self, size: crate::types::PageSize) -> TlbConfig {
        match size {
            crate::types::PageSize::Base => self.base,
            crate::types::PageSize::Mega => self.mega,
            crate::types::PageSize::Giga => self.giga,
        }
    }

    /// Total entries across the three classes.
    pub fn total_entries(&self) -> usize {
        self.base.entries() + self.mega.entries() + self.giga.entries()
    }
}

impl fmt::Display for MultiConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "4K {} / 2M {} / 1G {}",
            self.base.label(),
            self.mega.label(),
            self.giga.label()
        )
    }
}

impl fmt::Display for TlbConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} entries, {} ways, {} sets)",
            self.label(),
            self.entries,
            self.ways,
            self.sets()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_eval_geometry_matches_paper() {
        let c = TlbConfig::security_eval();
        assert_eq!(c.entries(), 32);
        assert_eq!(c.ways(), 8);
        assert_eq!(c.sets(), 4);
    }

    #[test]
    fn set_index_uses_low_vpn_bits() {
        let c = TlbConfig::sa(32, 8).unwrap();
        assert_eq!(c.set_of(Vpn(0)), 0);
        assert_eq!(c.set_of(Vpn(5)), 1);
        assert_eq!(c.set_of(Vpn(7)), 3);
        let fa = TlbConfig::fa(32).unwrap();
        assert_eq!(fa.set_of(Vpn(12345)), 0, "FA has one set");
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        assert!(TlbConfig::sa(0, 4).is_err());
        assert!(TlbConfig::sa(32, 0).is_err());
        assert!(TlbConfig::sa(33, 4).is_err(), "ways must divide entries");
        assert!(
            TlbConfig::sa(24, 4).is_err(),
            "6 sets is not a power of two"
        );
        assert!(TlbConfig::fa(0).is_err());
    }

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(TlbConfig::single_entry().label(), "1E");
        assert_eq!(TlbConfig::fa(32).unwrap().label(), "FA 32");
        assert_eq!(TlbConfig::sa(32, 2).unwrap().label(), "2W 32");
        assert_eq!(TlbConfig::sa(128, 4).unwrap().label(), "4W 128");
    }

    #[test]
    fn paper_config_list_has_seven_entries() {
        let configs = TlbConfig::paper_performance_configs();
        assert_eq!(configs.len(), 7);
        let labels: Vec<_> = configs.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            ["1E", "FA 32", "2W 32", "4W 32", "FA 128", "2W 128", "4W 128"]
        );
    }

    #[test]
    fn multi_config_classes_are_addressable() {
        use crate::types::PageSize;
        let m = MultiConfig::realistic();
        assert_eq!(m.class(PageSize::Base).entries(), 256);
        assert_eq!(m.class(PageSize::Mega).entries(), 32);
        assert_eq!(m.class(PageSize::Giga).entries(), 4);
        assert_eq!(m.total_entries(), 292);
        assert_eq!(m.to_string(), "4K 4W 256 / 2M 4W 32 / 1G FA 4");
        // The security-eval derivation keeps the base class verbatim.
        let s = MultiConfig::from_base(TlbConfig::security_eval());
        assert_eq!(s.base, TlbConfig::security_eval());
    }

    #[test]
    fn org_classification() {
        assert_eq!(TlbConfig::fa(32).unwrap().org(), TlbOrg::FullyAssociative);
        assert_eq!(
            TlbConfig::sa(32, 4).unwrap().org(),
            TlbOrg::SetAssociative { ways: 4 }
        );
    }
}
