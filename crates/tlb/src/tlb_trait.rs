//! The common interface of all TLB designs.

use crate::config::TlbConfig;
use crate::stats::TlbStats;
use crate::types::{Asid, Ppn, Vpn};

/// Result of a page-table walk issued by a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// The translated physical page, or `None` on a page fault.
    pub ppn: Option<Ppn>,
    /// Cycles the walk consumed.
    pub cycles: u64,
    /// The translation's page size (meaningful only when `ppn` is set).
    pub size: crate::types::PageSize,
}

impl WalkResult {
    /// A successful base-page translation.
    pub fn page(ppn: Ppn, cycles: u64) -> WalkResult {
        WalkResult {
            ppn: Some(ppn),
            cycles,
            size: crate::types::PageSize::Base,
        }
    }

    /// A successful megapage translation.
    pub fn mega(ppn: Ppn, cycles: u64) -> WalkResult {
        WalkResult {
            ppn: Some(ppn),
            cycles,
            size: crate::types::PageSize::Mega,
        }
    }

    /// A successful gigapage translation.
    pub fn giga(ppn: Ppn, cycles: u64) -> WalkResult {
        WalkResult {
            ppn: Some(ppn),
            cycles,
            size: crate::types::PageSize::Giga,
        }
    }

    /// A faulting walk.
    pub fn fault(cycles: u64) -> WalkResult {
        WalkResult {
            ppn: None,
            cycles,
            size: crate::types::PageSize::Base,
        }
    }
}

/// Something that can resolve virtual pages to physical pages — the
/// page-table walker of the system the TLB is mounted in.
///
/// The TLB hardware issues walk requests on misses; the Random-Fill TLB
/// additionally issues walks for the random addresses it fills (the paper
/// assumes the OS has pre-generated page-table entries for those,
/// footnote 5).
pub trait Translator {
    /// Walks the page table for `(asid, vpn)`.
    fn translate(&mut self, asid: Asid, vpn: Vpn) -> WalkResult;
}

impl<T: Translator + ?Sized> Translator for &mut T {
    fn translate(&mut self, asid: Asid, vpn: Vpn) -> WalkResult {
        (**self).translate(asid, vpn)
    }
}

/// Outcome of one TLB access as seen by the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the requested translation was resident (fast).
    pub hit: bool,
    /// Whether the request ultimately faulted (no valid translation).
    pub fault: bool,
    /// The translation returned to the CPU, if any.
    pub ppn: Option<Ppn>,
    /// Extra cycles spent on page-table walks for this access (zero on a
    /// hit). Includes walks issued for random fills, which the RF TLB
    /// performs on the critical path (Section 4.2.3 argues against
    /// asynchronous filling).
    pub walk_cycles: u64,
    /// The returned translation's page size.
    pub size: crate::types::PageSize,
}

impl AccessResult {
    /// A plain hit costing no walk cycles.
    pub fn hit_sized(ppn: Ppn, size: crate::types::PageSize) -> AccessResult {
        AccessResult {
            hit: true,
            fault: false,
            ppn: Some(ppn),
            walk_cycles: 0,
            size,
        }
    }

    /// A base-page hit costing no walk cycles.
    pub fn hit(ppn: Ppn) -> AccessResult {
        AccessResult::hit_sized(ppn, crate::types::PageSize::Base)
    }
}

/// The interface shared by the SA, SP, and RF TLB designs.
///
/// This trait is sealed: the security and performance evaluations of the
/// paper are defined over exactly these designs.
pub trait TlbCore: sealed::Sealed {
    /// Handles one translation request, walking the page table via
    /// `walker` as needed. Updates replacement state and counters.
    fn access(&mut self, asid: Asid, vpn: Vpn, walker: &mut dyn Translator) -> AccessResult;

    /// Whether `(asid, vpn)` is currently resident, without disturbing
    /// replacement state or counters.
    fn probe(&self, asid: Asid, vpn: Vpn) -> bool;

    /// Invalidates every entry (e.g. an OS-level TLB flush on context
    /// switch, or the `A_inv`/`V_inv` step of an attack pattern).
    fn flush_all(&mut self);

    /// Invalidates all entries of one address space.
    fn flush_asid(&mut self, asid: Asid);

    /// Invalidates one page of one address space (the targeted
    /// invalidation of Appendix B, e.g. an `mprotect()`-induced
    /// shootdown). Returns whether an entry was actually removed — present
    /// entries take an extra cycle to clear, which is the timing channel
    /// of the paper's "TLB Flush + Flush" discussion.
    fn flush_page(&mut self, asid: Asid, vpn: Vpn) -> bool;

    /// The accumulated performance counters.
    fn stats(&self) -> &TlbStats;

    /// Resets the performance counters.
    fn reset_stats(&mut self);

    /// This TLB's geometry.
    fn config(&self) -> TlbConfig;

    /// Short design name (`"SA"`, `"SP"`, `"RF"`, or `"L1+L2"`).
    fn design_name(&self) -> &'static str;

    /// Per-level counters for multi-level TLBs: level 0 is the L1.
    /// Single-level designs answer only level 0.
    fn level_stats(&self, level: usize) -> Option<&TlbStats> {
        (level == 0).then(|| self.stats())
    }

    /// Residency probe at a specific level of a multi-level TLB.
    /// Single-level designs answer only level 0.
    fn probe_level(&self, level: usize, asid: Asid, vpn: Vpn) -> Option<bool> {
        (level == 0).then(|| self.probe(asid, vpn))
    }

    /// Hardware hook invoked when the OS switches address spaces. The
    /// temporal-partitioning designs (`FS`, `FT`) clear state here; every
    /// other design does nothing (their defenses are spatial, not
    /// temporal).
    fn on_context_switch(&mut self) {}

    /// Whether the replacement state carries no observable residue — i.e.
    /// it is indistinguishable from the reset state for every possible
    /// victim-choice query. `None` means the design makes no
    /// temporal-partitioning claim about replacement state (all designs
    /// except `FT`). The oracle checks this after a context switch on
    /// designs that return `Some`.
    fn replacement_pristine(&self) -> Option<bool> {
        None
    }

    /// Programs the victim process ID register. The SA TLB has no such
    /// register and ignores this.
    fn set_victim_asid(&mut self, _victim: Option<Asid>) {}

    /// Programs the secure-region registers (`sbase`, `ssize`). Only the
    /// RF TLB has them; other designs ignore this.
    fn set_secure_region(&mut self, _region: Option<crate::types::SecureRegion>) {}

    /// Structural dump of every valid entry across all levels, in
    /// deterministic `(level, set, way)` order — the shadow oracle's view
    /// of the TLB state. Does not disturb replacement state or counters.
    fn snapshot(&self) -> Vec<crate::check::SnapshotEntry>;

    /// Verifies the design's structural invariants (set indexing, megapage
    /// alignment, duplicate freedom, and — per design — SP partition
    /// isolation or RF *Sec*-bit correctness) over the current contents.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant with entry-level detail.
    fn integrity(&self) -> Result<(), crate::check::IntegrityError>;

    /// Deterministically corrupts one resident entry (fault injection for
    /// the oracle's end-to-end tests). Returns `None` when no entry is
    /// eligible (e.g. the TLB is empty).
    fn corrupt_entry(
        &mut self,
        selector: u64,
        kind: crate::check::CorruptionKind,
    ) -> Option<crate::check::CorruptionReport>;
}

pub(crate) mod sealed {
    /// Seals [`super::TlbCore`] to this crate's designs.
    pub trait Sealed {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `Translator` must be usable through `&mut` references (the machine
    /// passes its walker down by reference).
    #[test]
    fn translator_auto_ref_impl() {
        struct T;
        impl Translator for T {
            fn translate(&mut self, _asid: Asid, vpn: Vpn) -> WalkResult {
                WalkResult::page(Ppn(vpn.0), 1)
            }
        }
        fn takes_dyn(t: &mut dyn Translator) -> WalkResult {
            t.translate(Asid(0), Vpn(5))
        }
        let mut t = T;
        let mut r = &mut t;
        assert_eq!(takes_dyn(&mut r).ppn, Some(Ppn(5)));
    }

    #[test]
    fn access_result_hit_constructor() {
        let r = AccessResult::hit(Ppn(3));
        assert!(r.hit && !r.fault);
        assert_eq!(r.walk_cycles, 0);
        assert_eq!(r.ppn, Some(Ppn(3)));
    }
}
