//! The standard set-associative (SA) TLB — the paper's baseline design.
//!
//! Hits require both the page address and the process ID (ASID) to match;
//! misses walk the page table and fill the LRU way of the indexed set.
//! Fully-associative (`FA`) and single-entry (`1E`) TLBs are degenerate
//! configurations of the same design.

use crate::array::EntryArray;
use crate::check::{
    CorruptionKind, CorruptionReport, IntegrityError, IntegrityKind, SnapshotEntry,
};
use crate::config::TlbConfig;
use crate::stats::TlbStats;
use crate::store::{AosProfile, SoaProfile, StoreProfile};
use crate::tlb_trait::{sealed, AccessResult, TlbCore, Translator};
use crate::types::{Asid, TlbEntry, Vpn};

/// A standard set-associative TLB with ASID tags and true-LRU replacement,
/// generic over the entry-storage profile.
#[derive(Debug, Clone)]
pub struct SaTlbGen<P: StoreProfile = SoaProfile> {
    array: EntryArray<P>,
    stats: TlbStats,
}

/// The SA TLB on the struct-of-arrays fast path (the default).
pub type SaTlb = SaTlbGen<SoaProfile>;

/// The SA TLB on the pre-overhaul reference storage (differential tests).
pub type SaTlbRef = SaTlbGen<AosProfile>;

impl<P: StoreProfile> SaTlbGen<P> {
    /// Creates an SA TLB with the given geometry.
    pub fn new(config: TlbConfig) -> SaTlbGen<P> {
        SaTlbGen {
            array: EntryArray::new(config),
            stats: TlbStats::new(),
        }
    }

    /// Number of currently valid entries (diagnostics).
    pub fn resident_count(&self) -> usize {
        self.array.valid_entries().count()
    }

    /// The underlying entry array (for designs composed on top of SA).
    pub(crate) fn array(&self) -> &EntryArray<P> {
        &self.array
    }

    /// Mutable entry-array view (for designs composed on top of SA).
    pub(crate) fn array_mut(&mut self) -> &mut EntryArray<P> {
        &mut self.array
    }

    /// Mutable counter view (for designs composed on top of SA).
    pub(crate) fn stats_mut(&mut self) -> &mut TlbStats {
        &mut self.stats
    }
}

impl<P: StoreProfile> sealed::Sealed for SaTlbGen<P> {}

impl<P: StoreProfile> TlbCore for SaTlbGen<P> {
    fn access(&mut self, asid: Asid, vpn: Vpn, walker: &mut dyn Translator) -> AccessResult {
        self.stats.accesses += 1;
        if let Some((set, way)) = self.array.lookup(asid, vpn) {
            self.stats.hits += 1;
            self.array.touch(set, way);
            let e = self.array.entry(set, way);
            return AccessResult::hit_sized(e.ppn, e.size);
        }
        self.stats.misses += 1;
        let walk = walker.translate(asid, vpn);
        let Some(ppn) = walk.ppn else {
            self.stats.faults += 1;
            return AccessResult {
                hit: false,
                fault: true,
                ppn: None,
                walk_cycles: walk.cycles,
                size: walk.size,
            };
        };
        let vpn_aligned = walk.size.align(vpn);
        let set = self.array.set_of_sized(vpn, walk.size);
        let way = self.array.choose_victim(set);
        let evicted = self.array.fill_at(
            set,
            way,
            TlbEntry {
                valid: true,
                vpn: vpn_aligned,
                ppn,
                asid,
                sec: false,
                size: walk.size,
            },
        );
        self.stats.fills += 1;
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        AccessResult {
            hit: false,
            fault: false,
            ppn: Some(ppn),
            walk_cycles: walk.cycles,
            size: walk.size,
        }
    }

    fn probe(&self, asid: Asid, vpn: Vpn) -> bool {
        self.array.lookup(asid, vpn).is_some()
    }

    fn flush_all(&mut self) {
        self.array.clear();
        self.stats.flushes += 1;
    }

    fn flush_asid(&mut self, asid: Asid) {
        let removed = self.array.invalidate_matching(|e| e.asid == asid);
        self.stats.invalidations += removed;
    }

    fn flush_page(&mut self, asid: Asid, vpn: Vpn) -> bool {
        if let Some((set, way)) = self.array.lookup(asid, vpn) {
            self.array.invalidate_at(set, way);
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    fn stats(&self) -> &TlbStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn config(&self) -> TlbConfig {
        self.array.config()
    }

    fn design_name(&self) -> &'static str {
        "SA"
    }

    fn snapshot(&self) -> Vec<SnapshotEntry> {
        self.array.snapshot_level(0)
    }

    fn integrity(&self) -> Result<(), IntegrityError> {
        self.array.check_geometry()?;
        // The SA design never sets the Sec bit.
        for e in self.array.valid_entries() {
            if e.sec {
                return Err(IntegrityError {
                    kind: IntegrityKind::SecBit,
                    detail: format!(
                        "SA entry ({}, {}) has its Sec bit set; the SA design never sets it",
                        e.asid, e.vpn
                    ),
                });
            }
        }
        Ok(())
    }

    fn corrupt_entry(&mut self, selector: u64, kind: CorruptionKind) -> Option<CorruptionReport> {
        self.array
            .corrupt_nth(selector, kind)
            .map(|(set, way, before, after)| CorruptionReport {
                level: 0,
                set,
                way,
                kind,
                before,
                after,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb_trait::WalkResult;
    use crate::types::Ppn;

    /// Identity translator charging a fixed walk cost.
    pub(crate) struct Ident(pub u64);
    impl Translator for Ident {
        fn translate(&mut self, _asid: Asid, vpn: Vpn) -> WalkResult {
            WalkResult::page(Ppn(vpn.0 ^ 0xabc00), self.0)
        }
    }

    /// Translator that always faults.
    struct Faulting;
    impl Translator for Faulting {
        fn translate(&mut self, _asid: Asid, _vpn: Vpn) -> WalkResult {
            WalkResult::fault(30)
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut t = SaTlb::new(TlbConfig::sa(32, 4).unwrap());
        let r1 = t.access(Asid(1), Vpn(0x10), &mut Ident(60));
        assert!(!r1.hit);
        assert_eq!(r1.walk_cycles, 60);
        let r2 = t.access(Asid(1), Vpn(0x10), &mut Ident(60));
        assert!(r2.hit);
        assert_eq!(r2.walk_cycles, 0);
        assert_eq!(r1.ppn, r2.ppn);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn hits_require_matching_asid() {
        // The ASID check is what defends the 10 external vulnerabilities in
        // Table 4 (Flush + Reload, Evict + Probe, Prime + Time).
        let mut t = SaTlb::new(TlbConfig::sa(32, 4).unwrap());
        t.access(Asid(1), Vpn(0x10), &mut Ident(60));
        let r = t.access(Asid(2), Vpn(0x10), &mut Ident(60));
        assert!(!r.hit, "cross-ASID access must miss");
    }

    #[test]
    fn set_conflicts_evict_lru() {
        // 2 sets x 2 ways: three pages in the same set overflow it.
        let mut t = SaTlb::new(TlbConfig::sa(4, 2).unwrap());
        let (a, b, c) = (Vpn(0), Vpn(2), Vpn(4)); // all map to set 0
        t.access(Asid(1), a, &mut Ident(1));
        t.access(Asid(1), b, &mut Ident(1));
        t.access(Asid(1), c, &mut Ident(1)); // evicts a (LRU)
        assert!(!t.probe(Asid(1), a));
        assert!(t.probe(Asid(1), b));
        assert!(t.probe(Asid(1), c));
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn fully_associative_has_no_set_conflicts() {
        let mut t = SaTlb::new(TlbConfig::fa(4).unwrap());
        for v in [0u64, 4, 8, 12] {
            t.access(Asid(1), Vpn(v), &mut Ident(1));
        }
        for v in [0u64, 4, 8, 12] {
            assert!(t.probe(Asid(1), Vpn(v)), "vpn {v} evicted in FA TLB");
        }
    }

    #[test]
    fn single_entry_thrashes() {
        let mut t = SaTlb::new(TlbConfig::single_entry());
        t.access(Asid(1), Vpn(1), &mut Ident(1));
        t.access(Asid(1), Vpn(2), &mut Ident(1));
        assert!(!t.probe(Asid(1), Vpn(1)));
        assert!(t.probe(Asid(1), Vpn(2)));
    }

    #[test]
    fn faults_do_not_fill() {
        let mut t = SaTlb::new(TlbConfig::sa(32, 4).unwrap());
        let r = t.access(Asid(1), Vpn(0x99), &mut Faulting);
        assert!(r.fault && r.ppn.is_none());
        assert_eq!(t.stats().faults, 1);
        assert_eq!(t.resident_count(), 0);
    }

    #[test]
    fn flush_all_empties_the_tlb() {
        let mut t = SaTlb::new(TlbConfig::sa(32, 4).unwrap());
        for v in 0..10u64 {
            t.access(Asid(1), Vpn(v), &mut Ident(1));
        }
        t.flush_all();
        assert_eq!(t.resident_count(), 0);
        assert_eq!(t.stats().flushes, 1);
    }

    #[test]
    fn flush_asid_is_selective() {
        let mut t = SaTlb::new(TlbConfig::sa(32, 4).unwrap());
        t.access(Asid(1), Vpn(1), &mut Ident(1));
        t.access(Asid(2), Vpn(2), &mut Ident(1));
        t.flush_asid(Asid(1));
        assert!(!t.probe(Asid(1), Vpn(1)));
        assert!(t.probe(Asid(2), Vpn(2)));
    }

    #[test]
    fn flush_page_reports_presence() {
        let mut t = SaTlb::new(TlbConfig::sa(32, 4).unwrap());
        t.access(Asid(1), Vpn(1), &mut Ident(1));
        assert!(t.flush_page(Asid(1), Vpn(1)), "entry was present");
        assert!(!t.flush_page(Asid(1), Vpn(1)), "entry already gone");
    }

    #[test]
    fn one_megapage_entry_covers_all_its_base_pages() {
        use crate::types::PageSize;
        /// A walker that maps everything under one 2 MiB page at 0x200.
        struct MegaWalker;
        impl Translator for MegaWalker {
            fn translate(&mut self, _asid: Asid, vpn: Vpn) -> WalkResult {
                WalkResult::mega(Ppn(0x999), PageSize::Mega.align(vpn).0)
            }
        }
        let mut t = SaTlb::new(TlbConfig::sa(32, 4).unwrap());
        let r = t.access(Asid(1), Vpn(0x205), &mut MegaWalker);
        assert!(!r.hit);
        // Different 4 KiB pages (even in different would-be sets) hit the
        // same megapage entry: the per-page signal disappears.
        for vpn in [0x200u64, 0x207, 0x2ff, 0x3ff] {
            let r = t.access(Asid(1), Vpn(vpn), &mut MegaWalker);
            assert!(r.hit, "vpn {vpn:#x} should hit the mega entry");
        }
        assert_eq!(t.resident_count(), 1);
    }

    #[test]
    fn probe_does_not_perturb_state_or_stats() {
        let mut t = SaTlb::new(TlbConfig::sa(32, 4).unwrap());
        t.access(Asid(1), Vpn(1), &mut Ident(1));
        let before = *t.stats();
        for _ in 0..5 {
            t.probe(Asid(1), Vpn(1));
            t.probe(Asid(1), Vpn(999));
        }
        assert_eq!(*t.stats(), before);
    }
}
