//! Structural self-checks and deterministic corruption hooks.
//!
//! The runtime shadow oracle (see `sectlb-sim::shadow`) verifies on every
//! access that a TLB's internal state still satisfies the design's
//! invariants. The designs expose three hooks for it through
//! [`crate::TlbCore`]:
//!
//! - [`TlbCore::snapshot`](crate::TlbCore::snapshot) — a structural dump
//!   of every valid entry with its `(level, set, way)` coordinates;
//! - [`TlbCore::integrity`](crate::TlbCore::integrity) — the design's own
//!   structural invariants (set indexing, megapage alignment, duplicate
//!   freedom, SP partition isolation, RF *Sec*-bit correctness);
//! - [`TlbCore::corrupt_entry`](crate::TlbCore::corrupt_entry) — a
//!   deterministic fault-injection primitive flipping one bit of one
//!   resident entry, used by the integration suite to prove end-to-end
//!   that real state corruption is caught, shrunk, and replayable.

use std::fmt;

use crate::types::TlbEntry;

/// Which field of a TLB entry a deterministic corruption flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionKind {
    /// Flip the lowest bit of the entry's virtual page tag.
    Tag,
    /// Flip the lowest bit of the entry's physical page number.
    Ppn,
    /// Invert the entry's *Sec* bit.
    Sec,
}

impl CorruptionKind {
    /// All corruption kinds, in a stable order (used to derive a kind from
    /// a deterministic per-trial roll).
    pub const ALL: [CorruptionKind; 3] = [
        CorruptionKind::Tag,
        CorruptionKind::Ppn,
        CorruptionKind::Sec,
    ];

    /// Stable lowercase name (also the repro-file encoding).
    pub fn name(self) -> &'static str {
        match self {
            CorruptionKind::Tag => "tag",
            CorruptionKind::Ppn => "ppn",
            CorruptionKind::Sec => "sec",
        }
    }

    /// Inverse of [`CorruptionKind::name`].
    pub fn from_name(name: &str) -> Option<CorruptionKind> {
        CorruptionKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One valid entry in a structural TLB snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// TLB level: 0 for the L1 (or a single-level design), 1 for the L2.
    pub level: usize,
    /// The set holding the entry.
    pub set: usize,
    /// The way holding the entry.
    pub way: usize,
    /// The entry itself (always valid).
    pub entry: TlbEntry,
}

/// What a successful [`crate::TlbCore::corrupt_entry`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionReport {
    /// TLB level of the corrupted entry (0 = L1).
    pub level: usize,
    /// Set of the corrupted entry.
    pub set: usize,
    /// Way of the corrupted entry.
    pub way: usize,
    /// The field that was flipped.
    pub kind: CorruptionKind,
    /// The entry before corruption.
    pub before: TlbEntry,
    /// The entry after corruption.
    pub after: TlbEntry,
}

/// Which invariant family an integrity check found violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityKind {
    /// Geometry/capacity: wrong set for the tag, misaligned megapage, or a
    /// duplicate `(asid, vpn, size)` entry.
    Capacity,
    /// SP partition isolation: an entry resides in the wrong partition.
    Partition,
    /// *Sec*-bit correctness: the bit disagrees with the programmed secure
    /// region (RF) or is set at all (SA/SP).
    SecBit,
    /// Multi-size class isolation: an entry resides in a per-page-size
    /// class array whose granularity differs from the entry's own size.
    ClassIsolation,
}

impl fmt::Display for IntegrityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IntegrityKind::Capacity => "capacity",
            IntegrityKind::Partition => "partition",
            IntegrityKind::SecBit => "sec-bit",
            IntegrityKind::ClassIsolation => "class-isolation",
        })
    }
}

/// A failed structural integrity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityError {
    /// The violated invariant family.
    pub kind: IntegrityKind,
    /// Human-readable specifics (which entry, where, why it is wrong).
    pub detail: String,
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} invariant violated: {}", self.kind, self.detail)
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_kind_names_roundtrip() {
        for k in CorruptionKind::ALL {
            assert_eq!(CorruptionKind::from_name(k.name()), Some(k));
        }
        assert_eq!(CorruptionKind::from_name("bogus"), None);
    }

    #[test]
    fn integrity_error_display_names_the_invariant() {
        let e = IntegrityError {
            kind: IntegrityKind::Partition,
            detail: "entry in the wrong ways".to_owned(),
        };
        assert!(e.to_string().contains("partition invariant violated"));
        assert!(e.to_string().contains("wrong ways"));
    }
}
