//! The Static-Partition (SP) TLB (Section 4.1 of the paper).
//!
//! The SP TLB is a set-associative TLB whose ways are statically split
//! between a *victim* process and all remaining processes (assumed to be
//! potential attackers). Hits are identical to the SA TLB — both address
//! and process ID must match across *all* ways — but fills are confined to
//! the requester's own partition, each with its own LRU policy (Figure 1).
//! The victim's translations therefore can never be evicted by attacker
//! activity and vice versa, which defends the external miss-based
//! vulnerabilities (Evict + Time, Prime + Probe) on top of what the ASID
//! check already prevents — 14 of the 24 vulnerability types in total.

use crate::array::EntryArray;
use crate::check::{
    CorruptionKind, CorruptionReport, IntegrityError, IntegrityKind, SnapshotEntry,
};
use crate::config::TlbConfig;
use crate::stats::TlbStats;
use crate::store::{AosProfile, SoaProfile, StoreProfile};
use crate::tlb_trait::{sealed, AccessResult, TlbCore, Translator};
use crate::types::{Asid, TlbEntry, Vpn};

/// An invalid SP partition split: the victim partition must leave at least
/// one way on each side (`0 < victim_ways < ways`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionError {
    /// The rejected victim way count.
    pub victim_ways: usize,
    /// The configuration's total ways per set.
    pub ways: usize,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "victim partition must take between 1 and ways-1 ways, got {} of {}",
            self.victim_ways, self.ways
        )
    }
}

impl std::error::Error for PartitionError {}

/// The Static-Partition TLB, generic over the entry-storage profile.
#[derive(Debug, Clone)]
pub struct SpTlbGen<P: StoreProfile = SoaProfile> {
    array: EntryArray<P>,
    stats: TlbStats,
    victim_asid: Option<Asid>,
    victim_ways: usize,
}

/// The SP TLB on the struct-of-arrays fast path (the default).
pub type SpTlb = SpTlbGen<SoaProfile>;

/// The SP TLB on the pre-overhaul reference storage (differential tests).
pub type SpTlbRef = SpTlbGen<AosProfile>;

impl<P: StoreProfile> SpTlbGen<P> {
    /// Creates an SP TLB with the paper's default allocation: the victim
    /// partition takes 50% of the ways.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than two ways per set (there
    /// must be at least one way on each side of the split).
    pub fn new(config: TlbConfig) -> SpTlbGen<P> {
        SpTlbGen::with_victim_ways(config, config.ways() / 2)
    }

    /// Creates an SP TLB assigning `victim_ways` ways per set to the
    /// victim partition (`0 < victim_ways < ways`), the design-time
    /// parameter `N` of Section 4.1.2.
    ///
    /// # Panics
    ///
    /// Panics if `victim_ways` is zero or not strictly less than the way
    /// count; see [`SpTlbGen::try_with_victim_ways`] for the fallible form.
    pub fn with_victim_ways(config: TlbConfig, victim_ways: usize) -> SpTlbGen<P> {
        match SpTlbGen::try_with_victim_ways(config, victim_ways) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`SpTlbGen::with_victim_ways`]: an out-of-range split is
    /// reported as a typed [`PartitionError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Fails unless `0 < victim_ways < ways`.
    pub fn try_with_victim_ways(
        config: TlbConfig,
        victim_ways: usize,
    ) -> Result<SpTlbGen<P>, PartitionError> {
        if victim_ways == 0 || victim_ways >= config.ways() {
            return Err(PartitionError {
                victim_ways,
                ways: config.ways(),
            });
        }
        Ok(SpTlbGen {
            array: EntryArray::new(config),
            stats: TlbStats::new(),
            victim_asid: None,
            victim_ways,
        })
    }

    /// Ways per set reserved for the victim partition.
    pub fn victim_ways(&self) -> usize {
        self.victim_ways
    }

    /// Reconfigures the partition split at run time — the dynamic
    /// extension Section 4.1.1 sketches ("could be further extended to be
    /// dynamic at run time"). The TLB is flushed so no entry is left on
    /// the wrong side of the new split.
    ///
    /// # Panics
    ///
    /// Panics if `victim_ways` is zero or not strictly less than the way
    /// count; see [`SpTlbGen::try_set_victim_ways`] for the fallible form.
    pub fn set_victim_ways(&mut self, victim_ways: usize) {
        if let Err(e) = self.try_set_victim_ways(victim_ways) {
            panic!("{e}");
        }
    }

    /// Fallible [`SpTlbGen::set_victim_ways`]: an out-of-range split is
    /// reported as a typed [`PartitionError`] and leaves the TLB untouched.
    ///
    /// # Errors
    ///
    /// Fails unless `0 < victim_ways < ways`.
    pub fn try_set_victim_ways(&mut self, victim_ways: usize) -> Result<(), PartitionError> {
        let ways = self.array.config().ways();
        if victim_ways == 0 || victim_ways >= ways {
            return Err(PartitionError { victim_ways, ways });
        }
        if victim_ways != self.victim_ways {
            self.flush_all();
            self.victim_ways = victim_ways;
        }
        Ok(())
    }

    /// The currently programmed victim process, if any.
    pub fn victim_asid(&self) -> Option<Asid> {
        self.victim_asid
    }

    /// Whether a request from `asid` belongs to the victim partition.
    fn is_victim(&self, asid: Asid) -> bool {
        self.victim_asid == Some(asid)
    }

    /// The way range of the partition owning `asid`'s fills.
    fn partition_ways(&self, asid: Asid) -> std::ops::Range<usize> {
        if self.is_victim(asid) {
            0..self.victim_ways
        } else {
            self.victim_ways..self.array.config().ways()
        }
    }

    /// Number of currently valid entries (diagnostics).
    pub fn resident_count(&self) -> usize {
        self.array.valid_entries().count()
    }

    /// Checks the partition invariant: victim entries only in victim ways,
    /// attacker entries only in attacker ways (testing/diagnostics).
    pub fn partition_invariant_holds(&self) -> bool {
        let config = self.array.config();
        for set in 0..config.sets() {
            for way in 0..config.ways() {
                let e = self.array.entry(set, way);
                if !e.valid {
                    continue;
                }
                let in_victim_ways = way < self.victim_ways;
                let owner_is_victim = self.is_victim(e.asid);
                if in_victim_ways != owner_is_victim {
                    return false;
                }
            }
        }
        true
    }
}

impl<P: StoreProfile> sealed::Sealed for SpTlbGen<P> {}

impl<P: StoreProfile> TlbCore for SpTlbGen<P> {
    fn access(&mut self, asid: Asid, vpn: Vpn, walker: &mut dyn Translator) -> AccessResult {
        self.stats.accesses += 1;
        // Hit path identical to the SA TLB (Figure 1): search every way.
        if let Some((set, way)) = self.array.lookup(asid, vpn) {
            self.stats.hits += 1;
            self.array.touch(set, way);
            let e = self.array.entry(set, way);
            return AccessResult::hit_sized(e.ppn, e.size);
        }
        self.stats.misses += 1;
        let walk = walker.translate(asid, vpn);
        let Some(ppn) = walk.ppn else {
            self.stats.faults += 1;
            return AccessResult {
                hit: false,
                fault: true,
                ppn: None,
                walk_cycles: walk.cycles,
                size: walk.size,
            };
        };
        // Miss path: replacement confined to the requester's partition,
        // under that partition's own LRU.
        let set = self.array.set_of_sized(vpn, walk.size);
        let way = self
            .array
            .choose_victim_among(set, self.partition_ways(asid))
            .expect("partitions are nonempty by construction");
        let evicted = self.array.fill_at(
            set,
            way,
            TlbEntry {
                valid: true,
                vpn: walk.size.align(vpn),
                ppn,
                asid,
                sec: false,
                size: walk.size,
            },
        );
        self.stats.fills += 1;
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        AccessResult {
            hit: false,
            fault: false,
            ppn: Some(ppn),
            walk_cycles: walk.cycles,
            size: walk.size,
        }
    }

    fn probe(&self, asid: Asid, vpn: Vpn) -> bool {
        self.array.lookup(asid, vpn).is_some()
    }

    fn flush_all(&mut self) {
        self.array.clear();
        self.stats.flushes += 1;
    }

    fn flush_asid(&mut self, asid: Asid) {
        let removed = self.array.invalidate_matching(|e| e.asid == asid);
        self.stats.invalidations += removed;
    }

    fn flush_page(&mut self, asid: Asid, vpn: Vpn) -> bool {
        if let Some((set, way)) = self.array.lookup(asid, vpn) {
            self.array.invalidate_at(set, way);
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    fn stats(&self) -> &TlbStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn config(&self) -> TlbConfig {
        self.array.config()
    }

    fn design_name(&self) -> &'static str {
        "SP"
    }

    fn set_victim_asid(&mut self, victim: Option<Asid>) {
        // Repurposing the partition for a different victim must not leave
        // stale entries on the wrong side of the split.
        if self.victim_asid != victim {
            self.flush_all();
        }
        self.victim_asid = victim;
    }

    fn snapshot(&self) -> Vec<SnapshotEntry> {
        self.array.snapshot_level(0)
    }

    fn integrity(&self) -> Result<(), IntegrityError> {
        self.array.check_geometry()?;
        let config = self.array.config();
        for set in 0..config.sets() {
            for way in 0..config.ways() {
                let e = self.array.entry(set, way);
                if !e.valid {
                    continue;
                }
                if e.sec {
                    return Err(IntegrityError {
                        kind: IntegrityKind::SecBit,
                        detail: format!(
                            "SP entry ({}, {}) has its Sec bit set; the SP design never \
                             sets it",
                            e.asid, e.vpn
                        ),
                    });
                }
                let in_victim_ways = way < self.victim_ways;
                let owner_is_victim = self.is_victim(e.asid);
                if in_victim_ways != owner_is_victim {
                    return Err(IntegrityError {
                        kind: IntegrityKind::Partition,
                        detail: format!(
                            "entry ({}, {}) at set {set} way {way} is on the wrong side \
                             of the {}-way victim split (victim asid: {:?})",
                            e.asid, e.vpn, self.victim_ways, self.victim_asid
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    fn corrupt_entry(&mut self, selector: u64, kind: CorruptionKind) -> Option<CorruptionReport> {
        self.array
            .corrupt_nth(selector, kind)
            .map(|(set, way, before, after)| CorruptionReport {
                level: 0,
                set,
                way,
                kind,
                before,
                after,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb_trait::WalkResult;
    use crate::types::Ppn;

    struct Ident;
    impl Translator for Ident {
        fn translate(&mut self, _asid: Asid, vpn: Vpn) -> WalkResult {
            WalkResult::page(Ppn(vpn.0 + 1000), 60)
        }
    }

    fn sp_with_victim() -> SpTlb {
        let mut t = SpTlb::new(TlbConfig::sa(32, 8).unwrap());
        t.set_victim_asid(Some(Asid(1)));
        t
    }

    #[test]
    fn default_split_is_half_the_ways() {
        let t = SpTlb::new(TlbConfig::sa(32, 8).unwrap());
        assert_eq!(t.victim_ways(), 4);
    }

    #[test]
    fn attacker_cannot_evict_victim_entries() {
        // The defining property (defeats Prime + Probe / Evict + Time):
        // attacker fills never replace victim entries.
        let mut t = sp_with_victim();
        let victim_page = Vpn(0x40); // set 0
        t.access(Asid(1), victim_page, &mut Ident);
        // Attacker floods set 0 with far more pages than the set holds.
        for i in 0..64u64 {
            t.access(Asid(2), Vpn(i * 4), &mut Ident);
        }
        assert!(
            t.probe(Asid(1), victim_page),
            "victim entry must survive attacker flooding"
        );
        assert!(t.partition_invariant_holds());
    }

    #[test]
    fn victim_cannot_evict_attacker_entries() {
        let mut t = sp_with_victim();
        let attacker_page = Vpn(0x80); // set 0
        t.access(Asid(2), attacker_page, &mut Ident);
        for i in 0..64u64 {
            t.access(Asid(1), Vpn(i * 4), &mut Ident);
        }
        assert!(
            t.probe(Asid(2), attacker_page),
            "attacker entry must survive victim flooding"
        );
        assert!(t.partition_invariant_holds());
    }

    #[test]
    fn victim_contends_within_its_own_ways() {
        // With 4 victim ways per set, a 5th same-set victim page evicts the
        // victim's own LRU entry (internal interference remains — the SP
        // TLB does not defend Bernstein-type attacks).
        let mut t = sp_with_victim();
        let pages: Vec<Vpn> = (0..5u64).map(|i| Vpn(i * 4)).collect(); // all set 0
        for &p in &pages {
            t.access(Asid(1), p, &mut Ident);
        }
        assert!(!t.probe(Asid(1), pages[0]), "victim LRU entry evicted");
        assert!(t.probe(Asid(1), pages[4]));
    }

    #[test]
    fn non_victim_processes_share_the_attacker_partition() {
        let mut t = sp_with_victim();
        t.access(Asid(2), Vpn(0), &mut Ident);
        t.access(Asid(3), Vpn(4), &mut Ident);
        assert!(t.probe(Asid(2), Vpn(0)));
        assert!(t.probe(Asid(3), Vpn(4)));
        assert!(t.partition_invariant_holds());
    }

    #[test]
    fn hits_still_require_matching_asid() {
        let mut t = sp_with_victim();
        t.access(Asid(1), Vpn(7), &mut Ident);
        let r = t.access(Asid(2), Vpn(7), &mut Ident);
        assert!(!r.hit);
    }

    #[test]
    fn without_a_victim_everything_lands_in_the_attacker_partition() {
        // The partition is fixed at design time; with no process designated
        // as the victim, the victim ways simply sit idle.
        let mut t = SpTlb::new(TlbConfig::sa(8, 4).unwrap());
        for i in 0..8u64 {
            t.access(Asid(5), Vpn(i * 2), &mut Ident); // all set 0
        }
        // Only the 2 attacker ways of set 0 are usable.
        assert_eq!(t.resident_count(), 2);
    }

    #[test]
    fn changing_the_victim_flushes_stale_entries() {
        let mut t = sp_with_victim();
        t.access(Asid(1), Vpn(3), &mut Ident);
        t.set_victim_asid(Some(Asid(9)));
        assert_eq!(t.resident_count(), 0);
        assert!(t.partition_invariant_holds());
    }

    #[test]
    fn runtime_resplit_flushes_and_rebalances() {
        let mut t = sp_with_victim();
        t.access(Asid(1), Vpn(3), &mut Ident);
        t.access(Asid(2), Vpn(7), &mut Ident);
        t.set_victim_ways(6);
        assert_eq!(t.victim_ways(), 6);
        assert_eq!(t.resident_count(), 0, "resplit must flush");
        // The victim can now keep 6 same-set pages resident.
        for i in 0..6u64 {
            t.access(Asid(1), Vpn(i * 4), &mut Ident);
        }
        for i in 0..6u64 {
            assert!(t.probe(Asid(1), Vpn(i * 4)), "page {i}");
        }
        assert!(t.partition_invariant_holds());
    }

    #[test]
    fn resplit_to_same_size_keeps_contents() {
        let mut t = sp_with_victim();
        t.access(Asid(1), Vpn(3), &mut Ident);
        t.set_victim_ways(t.victim_ways());
        assert!(t.probe(Asid(1), Vpn(3)), "no-op resplit must not flush");
    }

    #[test]
    #[should_panic(expected = "victim partition")]
    fn zero_victim_ways_is_rejected() {
        SpTlb::with_victim_ways(TlbConfig::sa(32, 4).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "victim partition")]
    fn all_ways_to_victim_is_rejected() {
        SpTlb::with_victim_ways(TlbConfig::sa(32, 4).unwrap(), 4);
    }
}
