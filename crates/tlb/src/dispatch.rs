//! Enum dispatch over the TLB designs — the simulator's fast path.
//!
//! The machine's per-access loop used to reach its TLB through
//! `Box<dyn TlbCore>`, paying an indirect call (and defeating inlining)
//! on every translation. [`TlbUnit`] closes that: the four concrete
//! designs are enum variants dispatched with a `match`, which the
//! compiler turns into direct, inlinable calls. The [`TlbCore`] trait
//! remains the compatibility surface — `TlbUnit` itself implements it,
//! and a [`TlbUnit::Dyn`] variant adapts any boxed `TlbCore` (custom
//! compositions, the differential suite's reference-path designs) into
//! the enum world at the old dyn-dispatch cost.

use crate::check::{CorruptionKind, CorruptionReport, IntegrityError, SnapshotEntry};
use crate::config::TlbConfig;
use crate::hierarchy::TlbHierarchy;
use crate::multi::MsTlb;
use crate::partition::SpTlb;
use crate::random_fill::RfTlb;
use crate::set_assoc::SaTlb;
use crate::stats::TlbStats;
use crate::temporal::TpTlb;
use crate::tlb_trait::{sealed, AccessResult, TlbCore, Translator};
use crate::types::{Asid, SecureRegion, Vpn};

/// A TLB of any design, dispatched by `match` instead of vtable.
pub enum TlbUnit {
    /// The set-associative baseline (also FA / 1E configurations).
    Sa(SaTlb),
    /// The Static-Partition design.
    Sp(SpTlb),
    /// The Random-Fill design.
    Rf(RfTlb),
    /// A temporal-partitioning design (`FS` or `FT`).
    Tp(TpTlb),
    /// The multi-size split design. Boxed: its three class arrays would
    /// otherwise quadruple the enum's inline size for every design.
    /// Dispatch stays a direct (inlinable) call; only the state is
    /// behind the pointer.
    Ms(Box<MsTlb>),
    /// A two-level hierarchy.
    Hier(TlbHierarchy),
    /// Escape hatch: any other [`TlbCore`] at dyn-dispatch cost.
    Dyn(Box<dyn TlbCore>),
}

impl std::fmt::Debug for TlbUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TlbUnit({})", self.design_name())
    }
}

impl From<SaTlb> for TlbUnit {
    fn from(t: SaTlb) -> TlbUnit {
        TlbUnit::Sa(t)
    }
}

impl From<SpTlb> for TlbUnit {
    fn from(t: SpTlb) -> TlbUnit {
        TlbUnit::Sp(t)
    }
}

impl From<RfTlb> for TlbUnit {
    fn from(t: RfTlb) -> TlbUnit {
        TlbUnit::Rf(t)
    }
}

impl From<TpTlb> for TlbUnit {
    fn from(t: TpTlb) -> TlbUnit {
        TlbUnit::Tp(t)
    }
}

impl From<MsTlb> for TlbUnit {
    fn from(t: MsTlb) -> TlbUnit {
        TlbUnit::Ms(Box::new(t))
    }
}

impl From<TlbHierarchy> for TlbUnit {
    fn from(t: TlbHierarchy) -> TlbUnit {
        TlbUnit::Hier(t)
    }
}

impl From<Box<dyn TlbCore>> for TlbUnit {
    fn from(t: Box<dyn TlbCore>) -> TlbUnit {
        TlbUnit::Dyn(t)
    }
}

/// Forwards one method call to the variant's concrete type. For the four
/// concrete variants this compiles to a direct call; only `Dyn` pays the
/// vtable.
macro_rules! dispatch {
    ($self:expr, $t:ident => $body:expr) => {
        match $self {
            TlbUnit::Sa($t) => $body,
            TlbUnit::Sp($t) => $body,
            TlbUnit::Rf($t) => $body,
            TlbUnit::Tp($t) => $body,
            TlbUnit::Ms($t) => $body,
            TlbUnit::Hier($t) => $body,
            TlbUnit::Dyn($t) => $body,
        }
    };
}

impl TlbUnit {
    /// Handles one translation request (see [`TlbCore::access`]); the
    /// monomorphic fast path the machine's hot loop calls.
    #[inline]
    pub fn access(&mut self, asid: Asid, vpn: Vpn, walker: &mut dyn Translator) -> AccessResult {
        dispatch!(self, t => t.access(asid, vpn, walker))
    }

    /// Residency probe without disturbing state (see [`TlbCore::probe`]).
    #[inline]
    pub fn probe(&self, asid: Asid, vpn: Vpn) -> bool {
        dispatch!(self, t => t.probe(asid, vpn))
    }

    /// Borrows the unit as the trait object the compatibility surface
    /// expects (read-only accessors, snapshots, diagnostics).
    pub fn as_core(&self) -> &dyn TlbCore {
        match self {
            TlbUnit::Sa(t) => t,
            TlbUnit::Sp(t) => t,
            TlbUnit::Rf(t) => t,
            TlbUnit::Tp(t) => t,
            TlbUnit::Ms(t) => &**t,
            TlbUnit::Hier(t) => t,
            TlbUnit::Dyn(t) => &**t,
        }
    }

    /// Mutable trait-object view (fault injection, manual programming).
    pub fn as_core_mut(&mut self) -> &mut dyn TlbCore {
        match self {
            TlbUnit::Sa(t) => t,
            TlbUnit::Sp(t) => t,
            TlbUnit::Rf(t) => t,
            TlbUnit::Tp(t) => t,
            TlbUnit::Ms(t) => &mut **t,
            TlbUnit::Hier(t) => t,
            TlbUnit::Dyn(t) => &mut **t,
        }
    }
}

impl sealed::Sealed for TlbUnit {}

impl TlbCore for TlbUnit {
    fn access(&mut self, asid: Asid, vpn: Vpn, walker: &mut dyn Translator) -> AccessResult {
        TlbUnit::access(self, asid, vpn, walker)
    }

    fn probe(&self, asid: Asid, vpn: Vpn) -> bool {
        TlbUnit::probe(self, asid, vpn)
    }

    fn flush_all(&mut self) {
        dispatch!(self, t => t.flush_all())
    }

    fn flush_asid(&mut self, asid: Asid) {
        dispatch!(self, t => t.flush_asid(asid))
    }

    fn flush_page(&mut self, asid: Asid, vpn: Vpn) -> bool {
        dispatch!(self, t => t.flush_page(asid, vpn))
    }

    fn stats(&self) -> &TlbStats {
        dispatch!(self, t => t.stats())
    }

    fn reset_stats(&mut self) {
        dispatch!(self, t => t.reset_stats())
    }

    fn config(&self) -> TlbConfig {
        dispatch!(self, t => t.config())
    }

    fn design_name(&self) -> &'static str {
        dispatch!(self, t => t.design_name())
    }

    fn level_stats(&self, level: usize) -> Option<&TlbStats> {
        dispatch!(self, t => t.level_stats(level))
    }

    fn probe_level(&self, level: usize, asid: Asid, vpn: Vpn) -> Option<bool> {
        dispatch!(self, t => t.probe_level(level, asid, vpn))
    }

    fn on_context_switch(&mut self) {
        dispatch!(self, t => t.on_context_switch())
    }

    fn replacement_pristine(&self) -> Option<bool> {
        dispatch!(self, t => t.replacement_pristine())
    }

    fn set_victim_asid(&mut self, victim: Option<Asid>) {
        dispatch!(self, t => t.set_victim_asid(victim))
    }

    fn set_secure_region(&mut self, region: Option<SecureRegion>) {
        dispatch!(self, t => t.set_secure_region(region))
    }

    fn snapshot(&self) -> Vec<SnapshotEntry> {
        dispatch!(self, t => t.snapshot())
    }

    fn integrity(&self) -> Result<(), IntegrityError> {
        dispatch!(self, t => t.integrity())
    }

    fn corrupt_entry(&mut self, selector: u64, kind: CorruptionKind) -> Option<CorruptionReport> {
        dispatch!(self, t => t.corrupt_entry(selector, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb_trait::WalkResult;
    use crate::types::Ppn;

    struct Ident;
    impl Translator for Ident {
        fn translate(&mut self, _asid: Asid, vpn: Vpn) -> WalkResult {
            WalkResult::page(Ppn(vpn.0 + 7), 60)
        }
    }

    #[test]
    fn enum_and_dyn_paths_agree() {
        let config = TlbConfig::sa(16, 4).unwrap();
        let mut fast: TlbUnit = SaTlb::new(config).into();
        let mut slow: TlbUnit = (Box::new(SaTlb::new(config)) as Box<dyn TlbCore>).into();
        for v in [1u64, 2, 3, 1, 2, 17, 1] {
            let a = fast.access(Asid(1), Vpn(v), &mut Ident);
            let b = slow.access(Asid(1), Vpn(v), &mut Ident);
            assert_eq!(a, b, "vpn {v}");
        }
        assert_eq!(fast.stats(), slow.stats());
        assert_eq!(fast.snapshot(), slow.snapshot());
        assert_eq!(fast.design_name(), "SA");
        assert_eq!(slow.design_name(), "SA");
    }

    #[test]
    fn trait_surface_reaches_every_variant() {
        let config = TlbConfig::sa(32, 8).unwrap();
        let units: Vec<TlbUnit> = vec![
            SaTlb::new(config).into(),
            SpTlb::new(config).into(),
            RfTlb::new(config).into(),
            TlbHierarchy::new(
                Box::new(SaTlb::new(config)),
                Box::new(SaTlb::new(TlbConfig::sa(128, 4).unwrap())),
                8,
            )
            .into(),
        ];
        let names: Vec<_> = units.iter().map(|u| u.design_name()).collect();
        assert_eq!(names, ["SA", "SP", "RF", "L1+L2"]);
        for u in &units {
            assert_eq!(u.stats().accesses, 0);
            u.integrity().unwrap();
            assert!(u.snapshot().is_empty());
        }
    }
}
