//! Cycle-level TLB hardware designs from *Secure TLBs* (ISCA 2019).
//!
//! This crate implements, as faithful state machines, the TLB designs the
//! paper implements in Chisel on the Rocket Core RISC-V processor:
//!
//! - the standard **set-associative (SA) TLB** with ASID tags and true-LRU
//!   replacement (fully-associative and single-entry TLBs are degenerate
//!   configurations), see [`SaTlb`];
//! - the **Static-Partition (SP) TLB** of Section 4.1: TLB ways are split
//!   between a victim process and everything else, see [`SpTlb`];
//! - the **Random-Fill (RF) TLB** of Section 4.2: misses in or around a
//!   configured secure region trigger a *random* fill while the requested
//!   translation is returned through a no-fill buffer, see [`RfTlb`].
//!
//! The TLBs are pure hardware models: they do not walk page tables
//! themselves but call back into a [`Translator`] (the system's page-table
//! walker) for translations, exactly like the hardware issues PTW requests.
//!
//! # Example
//!
//! ```
//! use sectlb_tlb::{SaTlb, TlbConfig, TlbCore, Translator, WalkResult};
//! use sectlb_tlb::types::{Asid, Ppn, Vpn};
//!
//! /// An identity "page table" for illustration.
//! struct Identity;
//! impl Translator for Identity {
//!     fn translate(&mut self, _asid: Asid, vpn: Vpn) -> WalkResult {
//!         WalkResult::page(Ppn(vpn.0), 60)
//!     }
//! }
//!
//! let mut tlb = SaTlb::new(TlbConfig::sa(32, 4).unwrap());
//! let (asid, vpn) = (Asid(1), Vpn(0x1000));
//! let miss = tlb.access(asid, vpn, &mut Identity);
//! assert!(!miss.hit);
//! let hit = tlb.access(asid, vpn, &mut Identity);
//! assert!(hit.hit && hit.walk_cycles == 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
pub mod check;
pub mod config;
pub mod dispatch;
pub mod hierarchy;
pub mod lru;
pub mod multi;
pub mod partition;
pub mod random_fill;
pub mod rfe;
pub mod set_assoc;
pub mod stats;
pub mod store;
pub mod temporal;
pub mod tlb_trait;
pub mod types;

pub use check::{CorruptionKind, CorruptionReport, IntegrityError, IntegrityKind, SnapshotEntry};
pub use config::{MultiConfig, TlbConfig, TlbOrg};
pub use dispatch::TlbUnit;
pub use hierarchy::TlbHierarchy;
pub use lru::{PackedLru, Replacement, StampLru};
pub use multi::{MsTlb, MsTlbGen, MsTlbRef};
pub use partition::{PartitionError, SpTlb, SpTlbGen, SpTlbRef};
pub use random_fill::{InvalidationPolicy, RandomFillEviction, RfTlb, RfTlbGen, RfTlbRef};
pub use rfe::RandomFillEngine;
pub use set_assoc::{SaTlb, SaTlbGen, SaTlbRef};
pub use stats::TlbStats;
pub use store::{AosProfile, AosStore, EntryStore, SoaProfile, SoaStore, StoreProfile};
pub use temporal::{ClearScope, TpTlb, TpTlbGen, TpTlbRef};
pub use tlb_trait::{AccessResult, TlbCore, Translator, WalkResult};
pub use types::{RegionError, SecureRegion};
