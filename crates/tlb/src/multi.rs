//! The multi-size split TLB (`MS`): one entry class per page size.
//!
//! Commercial L1 D-TLBs are not the single-geometry arrays of the paper's
//! evaluation: they hold separate 4 KiB / 2 MiB / 1 GiB structures with
//! distinct entries and ways per class (e.g. Skylake's 64-entry 4K,
//! 32-entry 2M, 4-entry 1G split). This design models that organization:
//! three independent [`EntryArray`]s — one per [`PageSize`] class, each
//! with its own [`TlbConfig`] geometry from a [`MultiConfig`] — probed
//! smallest-class-first on every access, with fills steered to the class
//! matching the walked translation's size.
//!
//! The class arrays are fully isolated: a fill in one class can never
//! evict or perturb another class's entries or replacement state. That
//! isolation is a checkable invariant ([`IntegrityKind::ClassIsolation`]):
//! every resident entry's page size must equal its class array's
//! granularity.
//!
//! Snapshot coordinates reuse the `level` field for the class index
//! (0 = 4 KiB, 1 = 2 MiB, 2 = 1 GiB), the same way the two-level
//! hierarchy numbers its levels.

use crate::array::EntryArray;
use crate::check::{
    CorruptionKind, CorruptionReport, IntegrityError, IntegrityKind, SnapshotEntry,
};
use crate::config::{MultiConfig, TlbConfig};
use crate::stats::TlbStats;
use crate::store::{AosProfile, SoaProfile, StoreProfile};
use crate::tlb_trait::{sealed, AccessResult, TlbCore, Translator};
use crate::types::{Asid, PageSize, TlbEntry, Vpn};

/// The multi-size split TLB, generic over the entry-storage profile.
#[derive(Debug, Clone)]
pub struct MsTlbGen<P: StoreProfile = SoaProfile> {
    /// One array per page-size class, indexed by [`PageSize::ALL`] order.
    classes: [EntryArray<P>; 3],
    multi: MultiConfig,
    stats: TlbStats,
}

/// The multi-size TLB on the struct-of-arrays fast path.
pub type MsTlb = MsTlbGen<SoaProfile>;

/// The multi-size TLB on the reference storage (differential tests).
pub type MsTlbRef = MsTlbGen<AosProfile>;

/// The class index a page size maps to (its position in
/// [`PageSize::ALL`]).
fn class_index(size: PageSize) -> usize {
    match size {
        PageSize::Base => 0,
        PageSize::Mega => 1,
        PageSize::Giga => 2,
    }
}

impl<P: StoreProfile> MsTlbGen<P> {
    /// Creates a multi-size TLB with the given per-class geometry.
    pub fn new(multi: MultiConfig) -> MsTlbGen<P> {
        MsTlbGen {
            classes: [
                EntryArray::new(multi.base),
                EntryArray::new(multi.mega),
                EntryArray::new(multi.giga),
            ],
            multi,
            stats: TlbStats::new(),
        }
    }

    /// The per-class geometry.
    pub fn multi_config(&self) -> MultiConfig {
        self.multi
    }

    /// Number of currently valid entries across all classes.
    pub fn resident_count(&self) -> usize {
        self.classes.iter().map(|c| c.valid_entries().count()).sum()
    }

    /// Finds `(class, set, way)` of a resident translation, probing the
    /// classes smallest first.
    fn find(&self, asid: Asid, vpn: Vpn) -> Option<(usize, usize, usize)> {
        self.classes
            .iter()
            .enumerate()
            .find_map(|(class, array)| array.lookup(asid, vpn).map(|(set, way)| (class, set, way)))
    }
}

impl<P: StoreProfile> sealed::Sealed for MsTlbGen<P> {}

impl<P: StoreProfile> TlbCore for MsTlbGen<P> {
    fn access(&mut self, asid: Asid, vpn: Vpn, walker: &mut dyn Translator) -> AccessResult {
        self.stats.accesses += 1;
        if let Some((class, set, way)) = self.find(asid, vpn) {
            self.stats.hits += 1;
            self.classes[class].touch(set, way);
            let e = self.classes[class].entry(set, way);
            return AccessResult::hit_sized(e.ppn, e.size);
        }
        self.stats.misses += 1;
        let walk = walker.translate(asid, vpn);
        let Some(ppn) = walk.ppn else {
            self.stats.faults += 1;
            return AccessResult {
                hit: false,
                fault: true,
                ppn: None,
                walk_cycles: walk.cycles,
                size: walk.size,
            };
        };
        // Steer the fill to the class matching the translation's size;
        // the other classes are untouched (class isolation).
        let array = &mut self.classes[class_index(walk.size)];
        let set = array.set_of_sized(vpn, walk.size);
        let way = array.choose_victim(set);
        let evicted = array.fill_at(
            set,
            way,
            TlbEntry {
                valid: true,
                vpn: walk.size.align(vpn),
                ppn,
                asid,
                sec: false,
                size: walk.size,
            },
        );
        self.stats.fills += 1;
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        AccessResult {
            hit: false,
            fault: false,
            ppn: Some(ppn),
            walk_cycles: walk.cycles,
            size: walk.size,
        }
    }

    fn probe(&self, asid: Asid, vpn: Vpn) -> bool {
        self.find(asid, vpn).is_some()
    }

    fn flush_all(&mut self) {
        for array in &mut self.classes {
            array.clear();
        }
        self.stats.flushes += 1;
    }

    fn flush_asid(&mut self, asid: Asid) {
        for array in &mut self.classes {
            self.stats.invalidations += array.invalidate_matching(|e| e.asid == asid);
        }
    }

    fn flush_page(&mut self, asid: Asid, vpn: Vpn) -> bool {
        if let Some((class, set, way)) = self.find(asid, vpn) {
            self.classes[class].invalidate_at(set, way);
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    fn stats(&self) -> &TlbStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The 4 KiB class's geometry — the class every single-size workload
    /// exercises. Use [`MsTlbGen::multi_config`] for the full split.
    fn config(&self) -> TlbConfig {
        self.multi.base
    }

    fn design_name(&self) -> &'static str {
        "MS"
    }

    fn probe_level(&self, level: usize, asid: Asid, vpn: Vpn) -> Option<bool> {
        self.classes
            .get(level)
            .map(|array| array.lookup(asid, vpn).is_some())
    }

    fn snapshot(&self) -> Vec<SnapshotEntry> {
        self.classes
            .iter()
            .enumerate()
            .flat_map(|(class, array)| array.snapshot_level(class))
            .collect()
    }

    fn integrity(&self) -> Result<(), IntegrityError> {
        for (class, array) in self.classes.iter().enumerate() {
            array.check_geometry()?;
            let class_size = PageSize::ALL[class];
            for e in array.valid_entries() {
                if e.size != class_size {
                    return Err(IntegrityError {
                        kind: IntegrityKind::ClassIsolation,
                        detail: format!(
                            "{} entry ({}, {}) resides in the {} class array",
                            e.size.label(),
                            e.asid,
                            e.vpn,
                            class_size.label()
                        ),
                    });
                }
                if e.sec {
                    return Err(IntegrityError {
                        kind: IntegrityKind::SecBit,
                        detail: format!(
                            "MS entry ({}, {}) has its Sec bit set; the MS design never sets it",
                            e.asid, e.vpn
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    fn corrupt_entry(&mut self, selector: u64, kind: CorruptionKind) -> Option<CorruptionReport> {
        // Spread the selector across the classes' eligible entries so
        // fault injection reaches every class; Sec corruption is only
        // defined on base pages, matching the per-array rule.
        let counts: Vec<u64> = self
            .classes
            .iter()
            .map(|array| {
                array
                    .valid_entries()
                    .filter(|e| kind != CorruptionKind::Sec || e.size == PageSize::Base)
                    .count() as u64
            })
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let mut target = selector % total;
        for (class, count) in counts.iter().enumerate() {
            if target < *count {
                return self.classes[class].corrupt_nth(target, kind).map(
                    |(set, way, before, after)| CorruptionReport {
                        level: class,
                        set,
                        way,
                        kind,
                        before,
                        after,
                    },
                );
            }
            target -= count;
        }
        unreachable!("target < total implies a class is found")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_assoc::SaTlb;
    use crate::tlb_trait::WalkResult;
    use crate::types::Ppn;

    /// Walker mapping three address ranges at three granularities:
    /// gigapages above 0x4_0000, megapages above 0x1000, base below.
    struct SizedWalker;
    impl Translator for SizedWalker {
        fn translate(&mut self, _asid: Asid, vpn: Vpn) -> WalkResult {
            if vpn.0 >= 0x4_0000 {
                WalkResult::giga(Ppn(PageSize::Giga.align(vpn).0 + 1), 90)
            } else if vpn.0 >= 0x1000 {
                WalkResult::mega(Ppn(PageSize::Mega.align(vpn).0 + 2), 75)
            } else {
                WalkResult::page(Ppn(vpn.0 + 3), 60)
            }
        }
    }

    #[test]
    fn base_only_workloads_match_sa_exactly() {
        // With a from_base split the 4 KiB class *is* the SA TLB: same
        // hits, misses, victims, and final contents. The security
        // campaign's closed-form theory relies on this equivalence.
        let base = TlbConfig::security_eval();
        let mut ms = MsTlb::new(MultiConfig::from_base(base));
        let mut sa = SaTlb::new(base);
        for v in [1u64, 2, 3, 1, 9, 2, 17, 1, 40, 3, 9, 77, 1] {
            for asid in [1u16, 2] {
                let a = ms.access(Asid(asid), Vpn(v), &mut SizedWalker);
                let b = sa.access(Asid(asid), Vpn(v), &mut SizedWalker);
                assert_eq!(a, b, "asid {asid} vpn {v}");
            }
        }
        assert_eq!(ms.stats(), sa.stats());
        assert_eq!(ms.snapshot(), sa.snapshot());
        ms.integrity().unwrap();
    }

    #[test]
    fn fills_land_in_their_size_class() {
        let mut ms = MsTlb::new(MultiConfig::realistic());
        ms.access(Asid(1), Vpn(5), &mut SizedWalker);
        ms.access(Asid(1), Vpn(0x1234), &mut SizedWalker);
        ms.access(Asid(1), Vpn(0x5_4321), &mut SizedWalker);
        let snap = ms.snapshot();
        let levels: Vec<usize> = snap.iter().map(|s| s.level).collect();
        assert_eq!(levels, [0, 1, 2]);
        assert_eq!(snap[0].entry.size, PageSize::Base);
        assert_eq!(snap[1].entry.size, PageSize::Mega);
        assert_eq!(snap[2].entry.size, PageSize::Giga);
        ms.integrity().unwrap();
        // All three hit on re-access, through any page inside the spans.
        assert!(ms.access(Asid(1), Vpn(5), &mut SizedWalker).hit);
        assert!(ms.access(Asid(1), Vpn(0x13ff), &mut SizedWalker).hit);
        assert!(ms.access(Asid(1), Vpn(0x7_ffff), &mut SizedWalker).hit);
    }

    #[test]
    fn classes_are_isolated_under_pressure() {
        // Thrash the 4 KiB class far past its capacity; the large-page
        // entries must survive untouched.
        let mut ms = MsTlb::new(MultiConfig::from_base(TlbConfig::security_eval()));
        ms.access(Asid(1), Vpn(0x1234), &mut SizedWalker);
        ms.access(Asid(1), Vpn(0x5_4321), &mut SizedWalker);
        for v in 0..256u64 {
            ms.access(Asid(1), Vpn(v), &mut SizedWalker);
        }
        assert!(ms.probe(Asid(1), Vpn(0x1234)), "mega entry evicted");
        assert!(ms.probe(Asid(1), Vpn(0x5_4321)), "giga entry evicted");
        ms.integrity().unwrap();
    }

    #[test]
    fn probe_level_addresses_each_class() {
        let mut ms = MsTlb::new(MultiConfig::realistic());
        ms.access(Asid(1), Vpn(0x1234), &mut SizedWalker);
        assert_eq!(ms.probe_level(0, Asid(1), Vpn(0x1234)), Some(false));
        assert_eq!(ms.probe_level(1, Asid(1), Vpn(0x1234)), Some(true));
        assert_eq!(ms.probe_level(2, Asid(1), Vpn(0x1234)), Some(false));
        assert_eq!(ms.probe_level(3, Asid(1), Vpn(0x1234)), None);
    }

    #[test]
    fn flushes_cover_every_class() {
        let mut ms = MsTlb::new(MultiConfig::realistic());
        ms.access(Asid(1), Vpn(5), &mut SizedWalker);
        ms.access(Asid(1), Vpn(0x1234), &mut SizedWalker);
        ms.access(Asid(2), Vpn(0x5_4321), &mut SizedWalker);
        ms.flush_asid(Asid(1));
        assert_eq!(ms.resident_count(), 1);
        assert!(ms.probe(Asid(2), Vpn(0x5_4321)));
        assert!(ms.flush_page(Asid(2), Vpn(0x5_0000)), "giga page present");
        assert_eq!(ms.resident_count(), 0);
        ms.access(Asid(1), Vpn(5), &mut SizedWalker);
        ms.flush_all();
        assert_eq!(ms.resident_count(), 0);
        assert_eq!(ms.stats().flushes, 1);
    }

    #[test]
    fn corruption_reaches_every_class_and_reports_it() {
        let mut ms = MsTlb::new(MultiConfig::realistic());
        ms.access(Asid(1), Vpn(5), &mut SizedWalker);
        ms.access(Asid(1), Vpn(0x1234), &mut SizedWalker);
        ms.access(Asid(1), Vpn(0x5_4321), &mut SizedWalker);
        let mut hit_classes = std::collections::HashSet::new();
        for selector in 0..3u64 {
            let mut probe = ms.clone();
            let r = probe
                .corrupt_entry(selector, CorruptionKind::Tag)
                .expect("eligible");
            assert_eq!(
                r.after.vpn.0,
                r.before.vpn.0 ^ (1 << r.before.size.span_shift())
            );
            hit_classes.insert(r.level);
            // Set-indexed classes catch the moved tag structurally; the
            // FA giga class has no set index to violate, so its
            // corruption is only caught by the oracle's page-table
            // cross-check.
            if probe.multi_config().class(r.before.size).sets() > 1 {
                assert!(probe.integrity().is_err(), "corruption must be caught");
            }
        }
        assert_eq!(hit_classes.len(), 3, "selector must reach all classes");
        // Sec corruption stays confined to the base class.
        let r = ms
            .clone()
            .corrupt_entry(7, CorruptionKind::Sec)
            .expect("base entry eligible");
        assert_eq!(r.level, 0);
    }

    #[test]
    fn class_isolation_violations_are_named() {
        let mut ms = MsTlb::new(MultiConfig::realistic());
        // Plant a megapage entry directly in the base class array.
        let rogue = TlbEntry {
            valid: true,
            vpn: Vpn(0x1200),
            ppn: Ppn(9),
            asid: Asid(1),
            sec: false,
            size: PageSize::Mega,
        };
        let set = ms.classes[0].set_of_sized(rogue.vpn, PageSize::Mega);
        ms.classes[0].fill_at(set, 0, rogue);
        let err = ms.integrity().expect_err("rogue entry must be caught");
        assert_eq!(err.kind, IntegrityKind::ClassIsolation);
        assert!(err.to_string().contains("class-isolation"));
        assert!(err.detail.contains("2m entry"));
    }
}
