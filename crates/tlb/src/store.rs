//! Entry storage backends: struct-of-arrays fast path and the
//! array-of-structs reference layout.
//!
//! The entry array of every TLB design (see `crate::array`) is generic
//! over how entries are stored. Two backends exist:
//!
//! - [`SoaStore`] — struct-of-arrays: tags, PPNs, ASIDs, and the
//!   valid/*Sec*/size bits live in parallel arrays (the flag bits packed
//!   one-per-entry into `u64` words). The hot lookup scan touches only
//!   the lanes it needs — a tag word, an ASID, and two bits — instead of
//!   dragging whole [`TlbEntry`] structs through the cache.
//! - [`AosStore`] — the original `Vec<TlbEntry>` layout, kept as the
//!   reference implementation the differential equivalence suite runs
//!   against.
//!
//! The two are bundled with a matching [`Replacement`](crate::lru::Replacement)
//! implementation by a [`StoreProfile`]: [`SoaProfile`] (SoA entries +
//! packed branchless LRU) is the default for every design alias;
//! [`AosProfile`] (entry structs + timestamp LRU) is the pre-overhaul
//! slow path, reachable through the `*Ref` design aliases.

use std::fmt;

use crate::lru::{PackedLru, Replacement, StampLru};
use crate::types::{Asid, PageSize, Ppn, TlbEntry, Vpn};

/// Backend storage for a TLB's `sets x ways` entry array.
///
/// Indices are flat (`set * ways + way`); geometry stays the caller's
/// concern. Implementations must be value-faithful: `get` after `set`
/// returns the exact entry written, and `matches_sized` must equal the
/// field-by-field comparison documented on it — entry residency is
/// observable behavior (it is what the paper's attacks measure), so the
/// backends have to be bit-for-bit interchangeable.
pub trait EntryStore: fmt::Debug + Clone {
    /// Storage for `capacity` entries, all invalid.
    fn new(capacity: usize) -> Self;

    /// The entry at `idx`, by value.
    fn get(&self, idx: usize) -> TlbEntry;

    /// Overwrites the entry at `idx`.
    fn set(&mut self, idx: usize, entry: TlbEntry);

    /// Whether the entry at `idx` is valid.
    fn valid(&self, idx: usize) -> bool;

    /// Marks the entry at `idx` invalid.
    fn invalidate(&mut self, idx: usize) {
        self.set(idx, TlbEntry::invalid());
    }

    /// Invalidates every entry.
    fn clear(&mut self);

    /// The hot-path probe: whether the entry at `idx` is valid, has page
    /// size `size`, and matches `(asid, aligned)`, where `aligned` is the
    /// requested VPN already aligned to `size`. Equivalent to
    /// `e.size == size && e.matches(asid, vpn)` on the stored entry.
    fn matches_sized(&self, idx: usize, asid: Asid, aligned: Vpn, size: PageSize) -> bool;
}

/// The original array-of-structs layout: one [`TlbEntry`] per slot.
#[derive(Debug, Clone)]
pub struct AosStore {
    entries: Vec<TlbEntry>,
}

impl EntryStore for AosStore {
    fn new(capacity: usize) -> AosStore {
        AosStore {
            entries: vec![TlbEntry::invalid(); capacity],
        }
    }

    fn get(&self, idx: usize) -> TlbEntry {
        self.entries[idx]
    }

    fn set(&mut self, idx: usize, entry: TlbEntry) {
        self.entries[idx] = entry;
    }

    fn valid(&self, idx: usize) -> bool {
        self.entries[idx].valid
    }

    fn clear(&mut self) {
        self.entries.fill(TlbEntry::invalid());
    }

    fn matches_sized(&self, idx: usize, asid: Asid, aligned: Vpn, size: PageSize) -> bool {
        let e = &self.entries[idx];
        e.valid && e.size == size && e.vpn == aligned && e.asid == asid
    }
}

/// Struct-of-arrays storage: parallel tag/PPN/ASID arrays plus packed
/// valid/*Sec*/size bits (one bit per entry in `u64` words).
#[derive(Debug, Clone)]
pub struct SoaStore {
    vpns: Vec<u64>,
    ppns: Vec<u64>,
    asids: Vec<u16>,
    /// Valid bits, entry `i` at bit `i % 64` of word `i / 64`.
    valid: Vec<u64>,
    /// *Sec* bits, same packing.
    sec: Vec<u64>,
    /// Page-size bits (set = megapage), same packing.
    mega: Vec<u64>,
    /// Page-size bits (set = gigapage), same packing. At most one of
    /// `mega`/`giga` is set per entry; both clear means a base page.
    giga: Vec<u64>,
}

impl SoaStore {
    #[inline]
    fn bit(words: &[u64], idx: usize) -> bool {
        (words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    #[inline]
    fn set_bit(words: &mut [u64], idx: usize, value: bool) {
        let mask = 1u64 << (idx % 64);
        if value {
            words[idx / 64] |= mask;
        } else {
            words[idx / 64] &= !mask;
        }
    }
}

impl EntryStore for SoaStore {
    fn new(capacity: usize) -> SoaStore {
        let words = capacity.div_ceil(64);
        SoaStore {
            vpns: vec![0; capacity],
            ppns: vec![0; capacity],
            asids: vec![0; capacity],
            valid: vec![0; words],
            sec: vec![0; words],
            mega: vec![0; words],
            giga: vec![0; words],
        }
    }

    fn get(&self, idx: usize) -> TlbEntry {
        TlbEntry {
            valid: Self::bit(&self.valid, idx),
            vpn: Vpn(self.vpns[idx]),
            ppn: Ppn(self.ppns[idx]),
            asid: Asid(self.asids[idx]),
            sec: Self::bit(&self.sec, idx),
            size: if Self::bit(&self.giga, idx) {
                PageSize::Giga
            } else if Self::bit(&self.mega, idx) {
                PageSize::Mega
            } else {
                PageSize::Base
            },
        }
    }

    fn set(&mut self, idx: usize, entry: TlbEntry) {
        self.vpns[idx] = entry.vpn.0;
        self.ppns[idx] = entry.ppn.0;
        self.asids[idx] = entry.asid.0;
        Self::set_bit(&mut self.valid, idx, entry.valid);
        Self::set_bit(&mut self.sec, idx, entry.sec);
        Self::set_bit(&mut self.mega, idx, entry.size == PageSize::Mega);
        Self::set_bit(&mut self.giga, idx, entry.size == PageSize::Giga);
    }

    fn valid(&self, idx: usize) -> bool {
        Self::bit(&self.valid, idx)
    }

    fn clear(&mut self) {
        // Only the valid bits gate every probe; stale lanes behind a
        // cleared valid bit are unobservable, so one memset suffices.
        self.valid.fill(0);
        self.sec.fill(0);
        self.mega.fill(0);
        self.giga.fill(0);
        self.vpns.fill(0);
        self.ppns.fill(0);
        self.asids.fill(0);
    }

    fn matches_sized(&self, idx: usize, asid: Asid, aligned: Vpn, size: PageSize) -> bool {
        Self::bit(&self.valid, idx)
            && Self::bit(&self.mega, idx) == (size == PageSize::Mega)
            && Self::bit(&self.giga, idx) == (size == PageSize::Giga)
            && self.vpns[idx] == aligned.0
            && self.asids[idx] == asid.0
    }
}

/// Bundles an [`EntryStore`] with the matching
/// [`Replacement`](crate::lru::Replacement) implementation, selecting a
/// whole storage strategy for a TLB design with one type parameter.
pub trait StoreProfile: fmt::Debug + Clone + 'static {
    /// The entry storage backend.
    type Store: EntryStore;
    /// The replacement-state representation.
    type Lru: Replacement;
}

/// The fast path: struct-of-arrays entries + packed branchless LRU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoaProfile;

impl StoreProfile for SoaProfile {
    type Store = SoaStore;
    type Lru = PackedLru;
}

/// The pre-overhaul reference path: entry structs + timestamp LRU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AosProfile;

impl StoreProfile for AosProfile {
    type Store = AosStore;
    type Lru = StampLru;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(valid: bool, sec: bool, size: PageSize) -> TlbEntry {
        TlbEntry {
            valid,
            vpn: Vpn(0x1234),
            ppn: Ppn(0x77),
            asid: Asid(9),
            sec,
            size,
        }
    }

    fn roundtrip<S: EntryStore>() {
        let mut s = S::new(70); // spans two flag words
        for idx in [0, 1, 63, 64, 69] {
            for entry in [
                sample(true, false, PageSize::Base),
                sample(true, true, PageSize::Mega),
                sample(true, false, PageSize::Giga),
                sample(false, false, PageSize::Base),
            ] {
                s.set(idx, entry);
                assert_eq!(s.get(idx), entry, "entry {idx} must roundtrip");
                assert_eq!(s.valid(idx), entry.valid);
            }
            s.invalidate(idx);
            assert!(!s.valid(idx));
        }
    }

    #[test]
    fn both_backends_roundtrip_entries() {
        roundtrip::<AosStore>();
        roundtrip::<SoaStore>();
    }

    fn probe_agreement<S: EntryStore>() {
        let mut s = S::new(8);
        let e = TlbEntry {
            valid: true,
            vpn: Vpn(0x200),
            ppn: Ppn(1),
            asid: Asid(3),
            sec: false,
            size: PageSize::Mega,
        };
        s.set(5, e);
        for (asid, vpn, size) in [
            (Asid(3), Vpn(0x2ff), PageSize::Mega),
            (Asid(3), Vpn(0x200), PageSize::Base),
            (Asid(3), Vpn(0x2ff), PageSize::Giga),
            (Asid(4), Vpn(0x2ff), PageSize::Mega),
            (Asid(3), Vpn(0x400), PageSize::Mega),
        ] {
            let aligned = size.align(vpn);
            let stored = s.get(5);
            let reference = stored.size == size && stored.matches(asid, vpn);
            assert_eq!(
                s.matches_sized(5, asid, aligned, size),
                reference,
                "probe ({asid}, {vpn}, {size:?}) must match the entry comparison"
            );
        }
        assert!(!s.matches_sized(0, Asid(3), Vpn(0), PageSize::Base));
    }

    #[test]
    fn probe_agrees_with_entry_matches() {
        probe_agreement::<AosStore>();
        probe_agreement::<SoaStore>();
    }

    #[test]
    fn clear_empties_everything() {
        let mut s = SoaStore::new(100);
        for i in 0..100 {
            s.set(i, sample(true, i % 2 == 0, PageSize::Base));
        }
        s.clear();
        for i in 0..100 {
            assert!(!s.valid(i));
            assert_eq!(s.get(i), TlbEntry::invalid());
        }
    }
}
