//! The Random Fill Engine (RFE) of the RF TLB (Figure 4a of the paper).
//!
//! The RFE generates the addresses used for TLB updates when the
//! Random-Fill TLB decides to perform a random fill:
//!
//! - for a request *inside* the secure region, a uniformly random virtual
//!   page within `[sbase, sbase + ssize)`;
//! - for a request *outside* the secure region that would evict a secure
//!   entry, the requested address with its TLB set-index bits randomized
//!   within the window covered by the secure region (footnote 6:
//!   `S_n = log2(min(ssize, nsets))`, anchored at `sbase`'s low bits).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::config::TlbConfig;
use crate::types::{SecureRegion, Vpn};

/// Hardware random-address generator for the RF TLB.
///
/// Seeded deterministically so simulations are reproducible; real hardware
/// would use an LFSR or TRNG.
#[derive(Debug, Clone)]
pub struct RandomFillEngine {
    rng: SmallRng,
}

impl RandomFillEngine {
    /// Creates an RFE from a seed.
    pub fn from_seed(seed: u64) -> RandomFillEngine {
        RandomFillEngine {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A uniformly random page within the secure region — the `D'` of the
    /// paper's `Sec_D = 1` case. May equal the originally requested page.
    pub fn random_secure_page(&mut self, region: SecureRegion) -> Vpn {
        region.base.offset(self.rng.gen_range(0..region.pages))
    }

    /// The requested page with its set-index bits re-randomized within the
    /// secure region's set window — the `D'` of the `Sec_R = 1, Sec_D = 0`
    /// case (footnote 6 of the paper).
    ///
    /// The window spans `min(ssize, nsets)` sets starting at the set of
    /// `sbase`; higher address bits of the request are preserved.
    pub fn randomize_set_index(
        &mut self,
        requested: Vpn,
        region: SecureRegion,
        config: TlbConfig,
    ) -> Vpn {
        let sets = config.sets() as u64;
        let window = region.pages.min(sets).max(1);
        let base_set = region.base.0 & (sets - 1);
        let target_set = (base_set + self.rng.gen_range(0..window)) & (sets - 1);
        Vpn((requested.0 & !(sets - 1)) | target_set)
    }

    /// A uniformly random way index for a random fill's eviction.
    ///
    /// Random fills evict a *random* way rather than the LRU way: the
    /// paper's probability `1/(min(ssize, nsets) · nway)` of a random fill
    /// displacing a specific entry (Section 5.3.1) is uniform over the
    /// window's entries, and evicting the LRU way would re-correlate the
    /// eviction with the victim's access recency.
    pub fn random_way(&mut self, ways: usize) -> usize {
        self.rng.gen_range(0..ways)
    }

    /// Raw random bits (used by tests and by workloads that need the same
    /// deterministic stream).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(base: u64, pages: u64) -> SecureRegion {
        SecureRegion::new(Vpn(base), pages)
    }

    #[test]
    fn secure_pages_stay_in_the_region_and_cover_it() {
        let mut rfe = RandomFillEngine::from_seed(7);
        let r = region(100, 3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let p = rfe.random_secure_page(r);
            assert!(r.contains(p), "{p} outside secure region");
            seen[(p.0 - 100) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 3 pages should be drawn");
    }

    #[test]
    fn set_randomization_preserves_high_bits() {
        let mut rfe = RandomFillEngine::from_seed(7);
        let config = TlbConfig::sa(32, 8).unwrap(); // 4 sets
        let r = region(0x100, 3);
        let requested = Vpn(0xdead0);
        for _ in 0..100 {
            let p = rfe.randomize_set_index(requested, r, config);
            assert_eq!(p.0 >> 2, requested.0 >> 2, "high bits must not change");
        }
    }

    #[test]
    fn set_window_is_anchored_at_sbase() {
        let mut rfe = RandomFillEngine::from_seed(9);
        let config = TlbConfig::sa(32, 8).unwrap(); // 4 sets
                                                    // Region of 2 pages starting at a page in set 1: window = sets {1, 2}.
        let r = region(0x101, 2);
        let mut sets_seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let p = rfe.randomize_set_index(Vpn(0x55550), r, config);
            sets_seen.insert(config.set_of(p));
        }
        assert_eq!(sets_seen.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn window_larger_than_sets_wraps() {
        let mut rfe = RandomFillEngine::from_seed(11);
        let config = TlbConfig::sa(32, 8).unwrap(); // 4 sets
        let r = region(0x100, 31); // window = min(31, 4) = 4 sets
        let mut sets_seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let p = rfe.randomize_set_index(Vpn(0x7770), r, config);
            sets_seen.insert(config.set_of(p));
        }
        assert_eq!(sets_seen.len(), 4, "all sets reachable");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = RandomFillEngine::from_seed(42);
        let mut b = RandomFillEngine::from_seed(42);
        let r = region(10, 5);
        for _ in 0..50 {
            assert_eq!(a.random_secure_page(r), b.random_secure_page(r));
        }
    }

    #[test]
    fn fully_associative_degenerates_to_one_set() {
        let mut rfe = RandomFillEngine::from_seed(3);
        let config = TlbConfig::fa(32).unwrap();
        let r = region(0x10, 3);
        let p = rfe.randomize_set_index(Vpn(0x123), r, config);
        // One set: the set-index bits vanish; address unchanged.
        assert_eq!(p, Vpn(0x123));
    }
}
