//! True-LRU replacement state.
//!
//! Each TLB set tracks the recency of its ways with a monotonically
//! increasing timestamp per way. The least recently used way is the one
//! with the smallest timestamp; invalid ways are always preferred for
//! fills. The Static-Partition TLB maintains its LRU decisions *within a
//! subset of ways* (each partition has its own LRU policy, Section 4.1.1),
//! which [`LruSet::lru_among`] supports directly.

/// LRU state for one set of `ways` entries.
#[derive(Debug, Clone)]
pub struct LruSet {
    stamps: Vec<u64>,
    clock: u64,
}

impl LruSet {
    /// Creates LRU state for a set with `ways` ways, all initially
    /// untouched (timestamp 0).
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> LruSet {
        assert!(ways > 0, "a set needs at least one way");
        LruSet {
            stamps: vec![0; ways],
            clock: 0,
        }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.stamps.len()
    }

    /// Records a use of `way` (hit or fill), making it the most recently
    /// used.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: usize) {
        assert!(way < self.stamps.len(), "way {way} out of range");
        self.clock += 1;
        self.stamps[way] = self.clock;
    }

    /// The least recently used way of the whole set.
    pub fn lru(&self) -> usize {
        self.lru_among(0..self.stamps.len())
            .expect("a nonempty set always has an LRU way")
    }

    /// The least recently used way among a subset of ways (the SP TLB's
    /// per-partition policy). Returns `None` for an empty subset.
    pub fn lru_among(&self, ways: impl IntoIterator<Item = usize>) -> Option<usize> {
        ways.into_iter().min_by_key(|&w| (self.stamps[w], w))
    }

    /// Clears the recency of `way` (used when an entry is invalidated, so
    /// the slot is reused first).
    pub fn reset(&mut self, way: usize) {
        assert!(way < self.stamps.len(), "way {way} out of range");
        self.stamps[way] = 0;
    }

    /// Clears all recency state.
    pub fn reset_all(&mut self) {
        self.stamps.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_ways_are_preferred() {
        let mut l = LruSet::new(4);
        l.touch(0);
        l.touch(1);
        // Ways 2 and 3 are untouched; the lowest index wins ties.
        assert_eq!(l.lru(), 2);
    }

    #[test]
    fn lru_follows_access_order() {
        let mut l = LruSet::new(3);
        l.touch(0);
        l.touch(1);
        l.touch(2);
        assert_eq!(l.lru(), 0);
        l.touch(0);
        assert_eq!(l.lru(), 1);
    }

    #[test]
    fn most_recently_used_is_never_evicted() {
        let mut l = LruSet::new(8);
        for w in 0..8 {
            l.touch(w);
        }
        for step in 0..100 {
            let mru = step % 8;
            l.touch(mru);
            assert_ne!(l.lru(), mru, "LRU must never pick the MRU way");
        }
    }

    #[test]
    fn subset_lru_ignores_other_ways() {
        let mut l = LruSet::new(4);
        l.touch(2); // way 2 recently used
        l.touch(0);
        l.touch(1);
        // Among the "partition" {2, 3}, way 3 is untouched.
        assert_eq!(l.lru_among([2, 3]), Some(3));
        l.touch(3);
        assert_eq!(l.lru_among([2, 3]), Some(2));
        assert_eq!(l.lru_among([]), None);
    }

    #[test]
    fn reset_makes_a_way_lru_again() {
        let mut l = LruSet::new(2);
        l.touch(0);
        l.touch(1);
        assert_eq!(l.lru(), 0);
        l.reset(1);
        assert_eq!(l.lru(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn touching_out_of_range_panics() {
        LruSet::new(2).touch(2);
    }
}
