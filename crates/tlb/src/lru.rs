//! True-LRU replacement state.
//!
//! Each TLB set tracks the recency of its ways with a monotonically
//! increasing timestamp per way. The least recently used way is the one
//! with the smallest timestamp; invalid ways are always preferred for
//! fills. The Static-Partition TLB maintains its LRU decisions *within a
//! subset of ways* (each partition has its own LRU policy, Section 4.1.1),
//! which [`LruSet::lru_among`] supports directly.
//!
//! Two interchangeable whole-array implementations of the same policy are
//! provided behind the [`Replacement`] trait:
//!
//! - [`StampLru`] — the original per-set timestamp representation
//!   ([`LruSet`] per set), kept as the reference implementation;
//! - [`PackedLru`] — packed per-set *rank* words updated branchlessly
//!   (one `u64` with 8-bit lanes per set when `ways <= 8`), the fast path
//!   used by the simulator hot loop.
//!
//! Both produce bit-identical victim choices for every operation
//! sequence; the property tests at the bottom of this module drive them
//! in lockstep.

use std::fmt;

/// LRU state for one set of `ways` entries.
#[derive(Debug, Clone)]
pub struct LruSet {
    stamps: Vec<u64>,
    clock: u64,
}

impl LruSet {
    /// Creates LRU state for a set with `ways` ways, all initially
    /// untouched (timestamp 0).
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> LruSet {
        assert!(ways > 0, "a set needs at least one way");
        LruSet {
            stamps: vec![0; ways],
            clock: 0,
        }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.stamps.len()
    }

    /// Records a use of `way` (hit or fill), making it the most recently
    /// used.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: usize) {
        assert!(way < self.stamps.len(), "way {way} out of range");
        self.clock += 1;
        self.stamps[way] = self.clock;
    }

    /// The least recently used way of the whole set.
    pub fn lru(&self) -> usize {
        self.lru_among(0..self.stamps.len())
            .expect("a nonempty set always has an LRU way")
    }

    /// The least recently used way among a subset of ways (the SP TLB's
    /// per-partition policy). Returns `None` for an empty subset.
    pub fn lru_among(&self, ways: impl IntoIterator<Item = usize>) -> Option<usize> {
        ways.into_iter().min_by_key(|&w| (self.stamps[w], w))
    }

    /// Clears the recency of `way` (used when an entry is invalidated, so
    /// the slot is reused first).
    pub fn reset(&mut self, way: usize) {
        assert!(way < self.stamps.len(), "way {way} out of range");
        self.stamps[way] = 0;
    }

    /// Clears all recency state.
    pub fn reset_all(&mut self) {
        self.stamps.fill(0);
    }
}

/// Whole-array replacement state: one LRU policy instance per TLB set.
///
/// Abstracts the representation of the per-set true-LRU state so the
/// entry array can run either the reference timestamp implementation
/// ([`StampLru`]) or the packed branchless one ([`PackedLru`]). Every
/// implementation must make *identical* victim choices for identical
/// operation sequences — the replacement policy is part of the designs'
/// observable behavior (eviction patterns are what the paper's attacks
/// measure).
pub trait Replacement: fmt::Debug + Clone {
    /// Fresh state for `sets` sets of `ways` ways, all untouched.
    fn new(sets: usize, ways: usize) -> Self;

    /// Records a use of `(set, way)`, making it the set's most recently
    /// used way.
    fn touch(&mut self, set: usize, way: usize);

    /// Clears the recency of `(set, way)` (entry invalidated; the slot is
    /// preferred for reuse).
    fn reset(&mut self, set: usize, way: usize);

    /// Clears all recency state.
    fn reset_all(&mut self);

    /// The least recently used way of `set` among a subset of ways.
    /// Returns `None` for an empty subset. Ties (untouched/reset ways)
    /// break toward the lowest way index.
    fn lru_among(&self, set: usize, ways: impl Iterator<Item = usize> + Clone) -> Option<usize>;
}

/// The reference [`Replacement`] implementation: one [`LruSet`] (u64
/// timestamp per way plus a per-set clock) per set. This is the original
/// representation the designs shipped with; it survives as the slow-path
/// oracle the differential equivalence suite compares against.
#[derive(Debug, Clone)]
pub struct StampLru {
    sets: Vec<LruSet>,
}

impl Replacement for StampLru {
    fn new(sets: usize, ways: usize) -> StampLru {
        StampLru {
            sets: (0..sets).map(|_| LruSet::new(ways)).collect(),
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.sets[set].touch(way);
    }

    fn reset(&mut self, set: usize, way: usize) {
        self.sets[set].reset(way);
    }

    fn reset_all(&mut self) {
        for s in &mut self.sets {
            s.reset_all();
        }
    }

    fn lru_among(&self, set: usize, ways: impl Iterator<Item = usize> + Clone) -> Option<usize> {
        self.sets[set].lru_among(ways)
    }
}

/// Packed per-set LRU rank state, updated branchlessly.
///
/// Each way carries a small recency *rank*: `0` means untouched (or
/// reset), and among touched ways a larger rank means more recently
/// used. Ranks are assigned from a per-set saturating mini-clock, so a
/// touch is just a clock increment plus one lane write — no loops and no
/// data-dependent branches on the common path. When the clock saturates
/// (once every ~250 touches of the same set) the set's ranks are
/// *renormalized*: compacted to `1 ..= k` in the same relative order,
/// which changes no comparison any query can observe.
///
/// This is order-isomorphic to [`LruSet`]'s unbounded timestamps: both
/// orderings agree on every comparison (positive ranks are always
/// distinct within a set), so victim choices are bit-identical — see the
/// `packed_matches_stamps_*` property tests, which drive both through
/// the same operation sequences in lockstep.
///
/// For `ways <= 8` each set's ranks live in one `u64` of 8-bit lanes;
/// wider sets (the paper's FA 32 and FA 128 configurations) fall back to
/// a flat `u16` rank array with the same semantics.
#[derive(Debug, Clone)]
pub struct PackedLru {
    ways: usize,
    ranks: Ranks,
}

#[derive(Debug, Clone)]
enum Ranks {
    /// One rank word per set; lane `w` (bits `8w .. 8w+8`) holds way
    /// `w`'s rank. Unused high lanes stay zero and are never selected
    /// because victim search only visits real way indices. `clocks[set]`
    /// is the last rank handed out in that set.
    Swar { words: Vec<u64>, clocks: Vec<u8> },
    /// `sets * ways` ranks, row-major by set.
    Wide { ranks: Vec<u16>, clocks: Vec<u16> },
}

/// Compacts positive ranks to `1 ..= k` preserving their relative order
/// (zero lanes stay zero); returns `k`, the new clock value. `row` holds
/// the widened lanes of one set.
fn renormalize(row: &mut [u64]) -> usize {
    // New ranks are stashed in the high bits so in-progress counts still
    // see every lane's old value in the low bits; committed at the end.
    const LOW: u64 = 0xffff_ffff;
    let mut compacted = 0;
    for w in 0..row.len() {
        let old = row[w] & LOW;
        if old == 0 {
            continue;
        }
        // New rank = 1 + number of positive ranks strictly below this
        // one. Positive ranks are distinct, so this is a permutation.
        let below = row
            .iter()
            .filter(|&&r| (r & LOW) > 0 && (r & LOW) < old)
            .count() as u64;
        compacted = compacted.max(below + 1);
        row[w] |= (below + 1) << 32;
    }
    for r in row.iter_mut() {
        *r >>= 32;
    }
    compacted as usize
}

impl PackedLru {
    /// The rank of `(set, way)` — exposed for the regression tests that
    /// pin "no-fill accesses leave replacement state untouched".
    pub fn rank(&self, set: usize, way: usize) -> u16 {
        assert!(way < self.ways, "way {way} out of range");
        match &self.ranks {
            Ranks::Swar { words, .. } => ((words[set] >> (way * 8)) & 0xff) as u16,
            Ranks::Wide { ranks, .. } => ranks[set * self.ways + way],
        }
    }
}

impl Replacement for PackedLru {
    fn new(sets: usize, ways: usize) -> PackedLru {
        assert!(ways > 0, "a set needs at least one way");
        let ranks = if ways <= 8 {
            Ranks::Swar {
                words: vec![0; sets],
                clocks: vec![0; sets],
            }
        } else {
            Ranks::Wide {
                ranks: vec![0; sets * ways],
                clocks: vec![0; sets],
            }
        };
        PackedLru { ways, ranks }
    }

    fn touch(&mut self, set: usize, way: usize) {
        assert!(way < self.ways, "way {way} out of range");
        let ways = self.ways;
        match &mut self.ranks {
            Ranks::Swar { words, clocks } => {
                if clocks[set] == u8::MAX {
                    // Rare: compact ranks to 1..=k in the same order.
                    let mut row: Vec<u64> =
                        (0..ways).map(|w| (words[set] >> (w * 8)) & 0xff).collect();
                    clocks[set] = renormalize(&mut row) as u8;
                    words[set] = row
                        .iter()
                        .enumerate()
                        .fold(0, |acc, (w, &r)| acc | (r << (w * 8)));
                }
                clocks[set] += 1;
                let shift = way * 8;
                words[set] = (words[set] & !(0xff << shift)) | (u64::from(clocks[set]) << shift);
            }
            Ranks::Wide { ranks, clocks } => {
                if clocks[set] == u16::MAX {
                    let row = &mut ranks[set * ways..(set + 1) * ways];
                    let mut wide: Vec<u64> = row.iter().map(|&r| u64::from(r)).collect();
                    clocks[set] = renormalize(&mut wide) as u16;
                    for (r, &w) in row.iter_mut().zip(&wide) {
                        *r = w as u16;
                    }
                }
                clocks[set] += 1;
                ranks[set * ways + way] = clocks[set];
            }
        }
    }

    fn reset(&mut self, set: usize, way: usize) {
        assert!(way < self.ways, "way {way} out of range");
        match &mut self.ranks {
            Ranks::Swar { words, .. } => words[set] &= !(0xff << (way * 8)),
            Ranks::Wide { ranks, .. } => ranks[set * self.ways + way] = 0,
        }
    }

    fn reset_all(&mut self) {
        match &mut self.ranks {
            Ranks::Swar { words, clocks } => {
                words.fill(0);
                clocks.fill(0);
            }
            Ranks::Wide { ranks, clocks } => {
                ranks.fill(0);
                clocks.fill(0);
            }
        }
    }

    fn lru_among(&self, set: usize, ways: impl Iterator<Item = usize> + Clone) -> Option<usize> {
        match &self.ranks {
            Ranks::Swar { words, .. } => {
                let word = words[set];
                ways.min_by_key(|&w| (((word >> (w * 8)) & 0xff), w))
            }
            Ranks::Wide { ranks, .. } => {
                let row = &ranks[set * self.ways..(set + 1) * self.ways];
                ways.min_by_key(|&w| (row[w], w))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_ways_are_preferred() {
        let mut l = LruSet::new(4);
        l.touch(0);
        l.touch(1);
        // Ways 2 and 3 are untouched; the lowest index wins ties.
        assert_eq!(l.lru(), 2);
    }

    #[test]
    fn lru_follows_access_order() {
        let mut l = LruSet::new(3);
        l.touch(0);
        l.touch(1);
        l.touch(2);
        assert_eq!(l.lru(), 0);
        l.touch(0);
        assert_eq!(l.lru(), 1);
    }

    #[test]
    fn most_recently_used_is_never_evicted() {
        let mut l = LruSet::new(8);
        for w in 0..8 {
            l.touch(w);
        }
        for step in 0..100 {
            let mru = step % 8;
            l.touch(mru);
            assert_ne!(l.lru(), mru, "LRU must never pick the MRU way");
        }
    }

    #[test]
    fn subset_lru_ignores_other_ways() {
        let mut l = LruSet::new(4);
        l.touch(2); // way 2 recently used
        l.touch(0);
        l.touch(1);
        // Among the "partition" {2, 3}, way 3 is untouched.
        assert_eq!(l.lru_among([2, 3]), Some(3));
        l.touch(3);
        assert_eq!(l.lru_among([2, 3]), Some(2));
        assert_eq!(l.lru_among([]), None);
    }

    #[test]
    fn reset_makes_a_way_lru_again() {
        let mut l = LruSet::new(2);
        l.touch(0);
        l.touch(1);
        assert_eq!(l.lru(), 0);
        l.reset(1);
        assert_eq!(l.lru(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn touching_out_of_range_panics() {
        LruSet::new(2).touch(2);
    }

    /// Drives a [`StampLru`] and a [`PackedLru`] through the same
    /// pseudo-random operation sequence and asserts every victim choice
    /// (full-set and subset) agrees at every step.
    fn lockstep(sets: usize, ways: usize, seed: u64, steps: usize) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut reference: StampLru = Replacement::new(sets, ways);
        let mut packed: PackedLru = Replacement::new(sets, ways);
        for step in 0..steps {
            let set = rng.gen_range(0..sets);
            let way = rng.gen_range(0..ways);
            match rng.gen_range(0..10) {
                0 => {
                    reference.reset(set, way);
                    packed.reset(set, way);
                }
                1 if step % 97 == 0 => {
                    reference.reset_all();
                    packed.reset_all();
                }
                _ => {
                    reference.touch(set, way);
                    packed.touch(set, way);
                }
            }
            for s in 0..sets {
                assert_eq!(
                    reference.lru_among(s, 0..ways),
                    packed.lru_among(s, 0..ways),
                    "full-set LRU diverged at step {step}, set {s} ({sets}x{ways}, seed {seed})"
                );
                // Subset queries (the SP TLB's per-partition policy).
                let split = (s % ways).max(1);
                assert_eq!(
                    reference.lru_among(s, 0..split),
                    packed.lru_among(s, 0..split),
                    "low-partition LRU diverged at step {step}, set {s}"
                );
                assert_eq!(
                    reference.lru_among(s, split..ways),
                    packed.lru_among(s, split..ways),
                    "high-partition LRU diverged at step {step}, set {s}"
                );
            }
        }
    }

    #[test]
    fn packed_matches_stamps_on_swar_geometries() {
        // All SWAR-path widths, including the security-eval 4x8.
        for ways in 1..=8 {
            lockstep(4, ways, 0xc0ffee + ways as u64, 4000);
        }
        lockstep(16, 4, 7, 4000);
    }

    #[test]
    fn packed_matches_stamps_on_wide_geometries() {
        // The fallback path: FA 32 and FA 128 (one set, many ways).
        lockstep(1, 32, 11, 4000);
        lockstep(1, 128, 13, 2000);
        lockstep(2, 9, 17, 4000);
    }

    #[test]
    fn packed_matches_stamps_on_multi_class_geometries() {
        // The MS split runs one independent replacement instance per
        // page-size class: 64x4 (realistic 4K), 8x4 / 4x4 (2M), and FA-4
        // (1G). Renormalization is per-set and must stay
        // order-preserving in every class geometry, not just the single
        // uniform security-eval array the campaigns historically used.
        lockstep(64, 4, 0x51ab, 3000);
        lockstep(8, 4, 0x51ac, 4000);
        lockstep(4, 4, 0x51ad, 4000);
        lockstep(1, 4, 0x51ae, 4000);
    }

    #[test]
    fn packed_rank_probe_reports_reset_and_mru() {
        let mut p: PackedLru = Replacement::new(2, 4);
        assert_eq!(p.rank(1, 2), 0);
        p.touch(1, 0);
        p.touch(1, 2);
        assert!(
            p.rank(1, 2) > p.rank(1, 0),
            "a fresh touch outranks earlier ones"
        );
        p.reset(1, 2);
        assert_eq!(p.rank(1, 2), 0);
    }

    #[test]
    fn packed_survives_clock_saturation() {
        // Force renormalization: far more touches per set than the 8-bit
        // (SWAR) and, with a long sequence, the lockstep already covers
        // order preservation — here we pin that saturation itself keeps
        // both implementations agreeing across the renormalize boundary.
        let mut reference: StampLru = Replacement::new(1, 4);
        let mut packed: PackedLru = Replacement::new(1, 4);
        for i in 0..2000usize {
            let way = (i * 7 + i / 3) % 4;
            reference.touch(0, way);
            packed.touch(0, way);
            if i % 11 == 0 {
                reference.reset(0, (i / 11) % 4);
                packed.reset(0, (i / 11) % 4);
            }
            assert_eq!(
                reference.lru_among(0, 0..4),
                packed.lru_among(0, 0..4),
                "diverged at touch {i}"
            );
        }
    }

    #[test]
    fn packed_tracks_access_order_like_lru_set() {
        let mut p: PackedLru = Replacement::new(1, 3);
        p.touch(0, 0);
        p.touch(0, 1);
        p.touch(0, 2);
        assert_eq!(p.lru_among(0, 0..3), Some(0));
        p.touch(0, 0);
        assert_eq!(p.lru_among(0, 0..3), Some(1));
    }
}
