//! Temporal-partitioning TLB designs: flush-on-switch (`FS`) and
//! `fence.t`-style full state clearing (`FT`).
//!
//! Where the paper's SP and RF designs partition the TLB *spatially*
//! (Section 4), the strongest known mitigation family partitions it
//! *temporally*: clear all microarchitectural state at every security
//! domain switch, so nothing observable survives from one domain's
//! execution into the next (Wistoff et al., "Systematic Prevention of
//! On-Core Timing Channels by Full Temporal Partitioning").
//!
//! Both designs here are the standard SA TLB plus a hardware hook on
//! context switch:
//!
//! - **`FS` (flush-on-switch)** invalidates every entry but leaves the
//!   per-set replacement ranks behind — the cheap clear an OS gets from an
//!   architectural full flush. The stale ranks are *timing-unobservable*
//!   (an empty set refills every way with fresh ranks before LRU is ever
//!   consulted), so `FS` times exactly like an OS-driven flush policy.
//! - **`FT` (`fence.t`)** additionally resets the replacement state, the
//!   way a `fence.t` instruction clears *all* state a domain could have
//!   influenced. The two designs are timing-equivalent in this model;
//!   they differ only in the state residue the shadow oracle can see,
//!   which is exactly why `fence.t` exists — entry flushing alone leaves
//!   replacement residue that richer replacement policies could leak
//!   through.

use crate::array::EntryArray;
use crate::check::{CorruptionKind, CorruptionReport, IntegrityError, SnapshotEntry};
use crate::config::TlbConfig;
use crate::set_assoc::SaTlbGen;
use crate::stats::TlbStats;
use crate::store::{AosProfile, SoaProfile, StoreProfile};
use crate::tlb_trait::{sealed, AccessResult, TlbCore, Translator};
use crate::types::{Asid, Vpn};

/// How much state a temporal-partitioning design clears on context
/// switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClearScope {
    /// Invalidate every entry; replacement ranks keep their values (`FS`).
    Entries,
    /// Invalidate every entry *and* reset replacement state (`FT`).
    Full,
}

/// A temporal-partitioning TLB: the SA design plus a state clear on every
/// context switch, generic over the entry-storage profile.
#[derive(Debug, Clone)]
pub struct TpTlbGen<P: StoreProfile = SoaProfile> {
    inner: SaTlbGen<P>,
    scope: ClearScope,
}

/// The temporal-partitioning TLB on the struct-of-arrays fast path.
pub type TpTlb = TpTlbGen<SoaProfile>;

/// The temporal-partitioning TLB on the reference storage (differential
/// tests).
pub type TpTlbRef = TpTlbGen<AosProfile>;

impl<P: StoreProfile> TpTlbGen<P> {
    /// Creates a temporal-partitioning TLB with the given geometry and
    /// clear scope.
    pub fn new(config: TlbConfig, scope: ClearScope) -> TpTlbGen<P> {
        TpTlbGen {
            inner: SaTlbGen::new(config),
            scope,
        }
    }

    /// The flush-on-switch design (`FS`).
    pub fn flush_on_switch(config: TlbConfig) -> TpTlbGen<P> {
        TpTlbGen::new(config, ClearScope::Entries)
    }

    /// The `fence.t` full-clear design (`FT`).
    pub fn fence_t(config: TlbConfig) -> TpTlbGen<P> {
        TpTlbGen::new(config, ClearScope::Full)
    }

    /// This design's clear scope.
    pub fn scope(&self) -> ClearScope {
        self.scope
    }

    /// Number of currently valid entries (diagnostics).
    pub fn resident_count(&self) -> usize {
        self.inner.resident_count()
    }

    fn array(&self) -> &EntryArray<P> {
        self.inner.array()
    }
}

impl<P: StoreProfile> sealed::Sealed for TpTlbGen<P> {}

impl<P: StoreProfile> TlbCore for TpTlbGen<P> {
    fn access(&mut self, asid: Asid, vpn: Vpn, walker: &mut dyn Translator) -> AccessResult {
        self.inner.access(asid, vpn, walker)
    }

    fn probe(&self, asid: Asid, vpn: Vpn) -> bool {
        self.inner.probe(asid, vpn)
    }

    fn flush_all(&mut self) {
        self.inner.flush_all();
    }

    fn flush_asid(&mut self, asid: Asid) {
        self.inner.flush_asid(asid);
    }

    fn flush_page(&mut self, asid: Asid, vpn: Vpn) -> bool {
        self.inner.flush_page(asid, vpn)
    }

    fn stats(&self) -> &TlbStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn config(&self) -> TlbConfig {
        self.inner.config()
    }

    fn design_name(&self) -> &'static str {
        match self.scope {
            ClearScope::Entries => "FS",
            ClearScope::Full => "FT",
        }
    }

    fn on_context_switch(&mut self) {
        match self.scope {
            ClearScope::Entries => self.inner.array_mut().clear_entries_keep_ranks(),
            ClearScope::Full => self.inner.array_mut().clear(),
        }
        self.inner.stats_mut().flushes += 1;
    }

    fn replacement_pristine(&self) -> Option<bool> {
        match self.scope {
            // `FS` makes no claim about replacement state; its ranks
            // legitimately carry residue across switches.
            ClearScope::Entries => None,
            ClearScope::Full => Some(self.array().replacement_pristine()),
        }
    }

    fn snapshot(&self) -> Vec<SnapshotEntry> {
        self.inner.snapshot()
    }

    fn integrity(&self) -> Result<(), IntegrityError> {
        self.inner.integrity()
    }

    fn corrupt_entry(&mut self, selector: u64, kind: CorruptionKind) -> Option<CorruptionReport> {
        self.inner.corrupt_entry(selector, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb_trait::WalkResult;
    use crate::types::Ppn;

    struct Ident;
    impl Translator for Ident {
        fn translate(&mut self, _asid: Asid, vpn: Vpn) -> WalkResult {
            WalkResult::page(Ppn(vpn.0 + 50), 60)
        }
    }

    fn config() -> TlbConfig {
        TlbConfig::security_eval()
    }

    #[test]
    fn behaves_like_sa_between_switches() {
        let mut tp = TpTlb::flush_on_switch(config());
        let mut sa = crate::set_assoc::SaTlb::new(config());
        for v in [1u64, 2, 3, 1, 2, 17, 1, 40, 3] {
            let a = tp.access(Asid(1), Vpn(v), &mut Ident);
            let b = sa.access(Asid(1), Vpn(v), &mut Ident);
            assert_eq!(a, b, "vpn {v}");
        }
        assert_eq!(tp.stats(), sa.stats());
        assert_eq!(tp.snapshot(), sa.snapshot());
    }

    #[test]
    fn context_switch_empties_both_designs() {
        for mut t in [TpTlb::flush_on_switch(config()), TpTlb::fence_t(config())] {
            for v in 0..10u64 {
                t.access(Asid(1), Vpn(v), &mut Ident);
            }
            assert_eq!(t.resident_count(), 10);
            t.on_context_switch();
            assert_eq!(t.resident_count(), 0, "{}", t.design_name());
            assert_eq!(t.stats().flushes, 1);
            for v in 0..10u64 {
                assert!(!t.probe(Asid(1), Vpn(v)));
            }
        }
    }

    #[test]
    fn fence_t_clears_replacement_residue_but_fs_does_not_claim_to() {
        let mut fs = TpTlb::flush_on_switch(config());
        let mut ft = TpTlb::fence_t(config());
        for t in [&mut fs, &mut ft] {
            // Touch enough pages to skew the ranks.
            for v in 0..16u64 {
                t.access(Asid(1), Vpn(v), &mut Ident);
            }
            t.on_context_switch();
        }
        assert_eq!(fs.replacement_pristine(), None, "FS makes no claim");
        assert_eq!(ft.replacement_pristine(), Some(true));
        // FS really does leave residue behind — the very reason fence.t
        // clears replacement state too.
        assert!(!fs.array().replacement_pristine());
    }

    #[test]
    fn design_names_distinguish_the_scopes() {
        assert_eq!(TpTlb::flush_on_switch(config()).design_name(), "FS");
        assert_eq!(TpTlb::fence_t(config()).design_name(), "FT");
        assert_eq!(
            TpTlb::flush_on_switch(config()).scope(),
            ClearScope::Entries
        );
    }

    #[test]
    fn sa_replacement_claim_stays_none() {
        // The default hook: non-temporal designs never claim pristineness.
        let sa = crate::set_assoc::SaTlb::new(config());
        assert_eq!(sa.replacement_pristine(), None);
    }
}
