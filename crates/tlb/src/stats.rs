//! Hardware performance counters for the TLB designs.
//!
//! The paper adds a TLB-miss performance counter to the Rocket Core so
//! that the micro security benchmarks can distinguish fast (hit) from slow
//! (miss) accesses (Figure 6) and so that MPKI can be measured
//! (Section 6.2). This module models those counters, plus a few extra
//! design-insight counters (random fills, no-fill responses).

use std::fmt;

/// Counters accumulated by a TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Total translation requests.
    pub accesses: u64,
    /// Requests satisfied by a resident entry (fast).
    pub hits: u64,
    /// Requests whose translation was not resident (slow — this is the
    /// counter the micro security benchmarks read).
    pub misses: u64,
    /// Normal demand fills performed.
    pub fills: u64,
    /// Random fills performed by the RF TLB's Random Fill Engine.
    pub random_fills: u64,
    /// Responses served through the RF TLB's no-fill buffer (the requested
    /// translation was returned to the CPU without entering the TLB).
    pub no_fill_responses: u64,
    /// Valid entries evicted by fills.
    pub evictions: u64,
    /// Entries removed by targeted or ASID invalidations.
    pub invalidations: u64,
    /// Whole-TLB flushes.
    pub flushes: u64,
    /// Requests that faulted (no valid translation existed).
    pub faults: u64,
}

impl TlbStats {
    /// Fresh counters.
    pub fn new() -> TlbStats {
        TlbStats::default()
    }

    /// Hit rate in `[0, 1]`; `None` before any access.
    pub fn hit_rate(&self) -> Option<f64> {
        (self.accesses > 0).then(|| self.hits as f64 / self.accesses as f64)
    }

    /// Misses per kilo-accesses (the TLB-side ingredient of the paper's
    /// MPKI metric; the CPU divides by retired instructions instead).
    pub fn misses_per_kilo_accesses(&self) -> Option<f64> {
        (self.accesses > 0).then(|| self.misses as f64 * 1000.0 / self.accesses as f64)
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = TlbStats::default();
    }
}

impl fmt::Display for TlbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} misses={} fills={} random_fills={} evictions={} flushes={}",
            self.accesses,
            self.hits,
            self.misses,
            self.fills,
            self.random_fills,
            self.evictions,
            self.flushes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_none_before_any_access() {
        let s = TlbStats::new();
        assert_eq!(s.hit_rate(), None);
        assert_eq!(s.misses_per_kilo_accesses(), None);
    }

    #[test]
    fn rates_compute_from_counters() {
        let s = TlbStats {
            accesses: 200,
            hits: 150,
            misses: 50,
            ..TlbStats::default()
        };
        assert_eq!(s.hit_rate(), Some(0.75));
        assert_eq!(s.misses_per_kilo_accesses(), Some(250.0));
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = TlbStats {
            accesses: 10,
            misses: 3,
            ..TlbStats::default()
        };
        s.reset();
        assert_eq!(s, TlbStats::default());
    }
}
