//! The paper's Table 5, transcribed for comparison.

use sectlb_sim::machine::TlbDesign;
use sectlb_tlb::config::TlbConfig;

/// One row of the paper's Table 5.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// TLB design.
    pub design: TlbDesign,
    /// TLB geometry.
    pub config: TlbConfig,
    /// Reported Slice LUTs.
    pub luts: u64,
    /// Reported Slice registers.
    pub registers: u64,
}

/// All nineteen synthesized configurations of Table 5 (Xilinx ZC706;
/// block-RAM and DSP counts are constant across rows and omitted).
pub fn paper_table5() -> Vec<PaperRow> {
    let fa32 = TlbConfig::fa(32).expect("valid");
    let w2_32 = TlbConfig::sa(32, 2).expect("valid");
    let w4_32 = TlbConfig::sa(32, 4).expect("valid");
    let fa128 = TlbConfig::fa(128).expect("valid");
    let w2_128 = TlbConfig::sa(128, 2).expect("valid");
    let w4_128 = TlbConfig::sa(128, 4).expect("valid");
    let row = |design, config, luts, registers| PaperRow {
        design,
        config,
        luts,
        registers,
    };
    use TlbDesign::*;
    vec![
        row(Sa, TlbConfig::single_entry(), 35_266, 18_359),
        row(Sa, fa32, 36_395, 22_199),
        row(Sa, w2_32, 36_298, 23_513),
        row(Sa, w4_32, 36_043, 22_765),
        row(Sa, fa128, 40_177, 33_815),
        row(Sa, w2_128, 39_684, 38_630),
        row(Sa, w4_128, 38_107, 35_694),
        row(Sp, fa32, 36_499, 22_251),
        row(Sp, w2_32, 36_387, 23_523),
        row(Sp, w4_32, 36_183, 22_798),
        row(Sp, fa128, 40_568, 33_824),
        row(Sp, w2_128, 38_609, 38_521),
        row(Sp, w4_128, 38_049, 35_659),
        row(Rf, fa32, 38_281, 22_697),
        row(Rf, w2_32, 38_510, 25_643),
        row(Rf, w4_32, 38_266, 24_018),
        row(Rf, fa128, 42_740, 34_252),
        row(Rf, w2_128, 42_509, 45_823),
        row(Rf, w4_128, 41_259, 39_538),
    ]
}

/// The paper's baseline row (32-entry 4-way SA TLB).
pub fn paper_baseline() -> PaperRow {
    paper_table5()[3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_rows_as_in_the_paper() {
        assert_eq!(paper_table5().len(), 19);
    }

    #[test]
    fn baseline_is_the_4w32_sa_row() {
        let b = paper_baseline();
        assert_eq!(b.design, TlbDesign::Sa);
        assert_eq!(b.config.entries(), 32);
        assert_eq!(b.config.ways(), 4);
        assert_eq!(b.luts, 36_043);
    }

    #[test]
    fn paper_deltas_reproduce_from_the_transcription() {
        // Spot-check the Δ columns: RF 4W 32 is +2,223 LUTs over baseline.
        let rows = paper_table5();
        let base = paper_baseline();
        let rf_4w32 = rows
            .iter()
            .find(|r| r.design == TlbDesign::Rf && r.config == base.config)
            .expect("present");
        assert_eq!(rf_4w32.luts as i64 - base.luts as i64, 2_223);
        assert_eq!(rf_4w32.registers as i64 - base.registers as i64, 1_253);
    }
}
