//! Structural FPGA area model for Table 5 of *Secure TLBs* (ISCA 2019).
//!
//! The paper reports Slice-LUT and Slice-Register counts from Xilinx
//! synthesis of the full Rocket-Core processor on a ZC706 for nineteen
//! TLB configurations. We cannot synthesize HDL (see DESIGN.md,
//! substitution 4), so this crate estimates area *structurally*: a fixed
//! core cost (calibrated once against the paper's `1E` SA baseline) plus
//! per-component costs derived from the designs' actual storage and
//! logic — entry bits, tag comparators, LRU state, the SP partition
//! steering, and the RF TLB's Sec bits, Random Fill Engine, probe port,
//! and no-fill buffer.
//!
//! The model reproduces the *ordering and rough magnitude* of the paper's
//! numbers (mean relative error a few percent — asserted in the tests),
//! not exact LUT counts, which depend on synthesis heuristics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod paper;

pub use model::{estimate, AreaEstimate};
pub use paper::{paper_table5, PaperRow};
