//! The structural area estimator.

use sectlb_sim::machine::TlbDesign;
use sectlb_tlb::config::{MultiConfig, TlbConfig};

/// Estimated FPGA resources for a whole processor with one TLB variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaEstimate {
    /// Slice LUTs.
    pub luts: u64,
    /// Slice registers (flip-flops).
    pub registers: u64,
}

impl AreaEstimate {
    /// Difference from a baseline estimate (the Δ columns of Table 5).
    pub fn delta(self, baseline: AreaEstimate) -> (i64, i64) {
        (
            self.luts as i64 - baseline.luts as i64,
            self.registers as i64 - baseline.registers as i64,
        )
    }
}

/// Rocket-Core cost outside the L1 D-TLB, calibrated once against the
/// paper's `1E` SA row (35,266 LUTs / 18,359 registers minus one entry's
/// worth of TLB).
const CORE_LUTS: u64 = 35_241;
const CORE_REGS: u64 = 18_219;

/// Sv39 tag bits: 27-bit VPN (minus set-index bits) plus the ASID bits
/// Rocket compares on.
const VPN_BITS: u64 = 27;
const ASID_BITS: u64 = 7;
/// Storage bits per entry before replication: VPN + PPN + ASID + valid.
const ENTRY_REG_BITS: u64 = 140; // observed replication factor on Rocket
/// LUTs of read/update muxing per entry.
const LUTS_PER_ENTRY: u64 = 21;

fn log2(x: u64) -> u64 {
    63 - x.next_power_of_two().leading_zeros() as u64
}

/// LUTs of the parallel tag match in one lookup port.
fn comparator_luts(config: TlbConfig) -> u64 {
    let tag_bits = VPN_BITS - log2(config.sets() as u64) + ASID_BITS;
    // A 2-input-bit equality per LUT, one comparator per way searched in
    // parallel (all entries for FA).
    config.ways() as u64 * tag_bits / 2
}

/// True-LRU bookkeeping logic.
fn lru_luts(config: TlbConfig) -> u64 {
    config.sets() as u64 * config.ways() as u64 * log2(config.ways() as u64)
}

fn lru_regs(config: TlbConfig) -> u64 {
    config.sets() as u64 * config.ways() as u64 * log2(config.ways() as u64)
}

/// Estimates the whole-processor area for a TLB design and geometry.
pub fn estimate(design: TlbDesign, config: TlbConfig) -> AreaEstimate {
    let entries = config.entries() as u64;
    let mut luts =
        CORE_LUTS + entries * LUTS_PER_ENTRY + comparator_luts(config) + lru_luts(config);
    let mut regs = CORE_REGS + entries * ENTRY_REG_BITS + lru_regs(config);
    match design {
        TlbDesign::Sa => {}
        TlbDesign::Sp => {
            // Victim-ASID register + compare, and per-partition fill
            // steering (Section 6.6: "SP requires minimal changes").
            luts += 100 + ASID_BITS;
            regs += 30;
        }
        TlbDesign::Rf => {
            // Sec bit per entry and its steering; the probe (no-fill)
            // port duplicates the tag match; the RFE (LFSR + range
            // adders), region registers, the one-entry buffer, and the
            // Figure 3 control FSM.
            luts += entries * 8 + comparator_luts(config) + 1_400;
            regs += entries * 16 + 300;
        }
        TlbDesign::Fs => {
            // ASID-change detector plus a gang clear of the valid bits
            // (one reset fan-out, no per-entry logic).
            luts += 40;
            regs += ASID_BITS + 1;
        }
        TlbDesign::Ft => {
            // The FS clear plus the fan-out that wipes the replacement
            // state (`fence.t` clears LRU stamps too).
            luts += 40 + lru_luts(config) / 4;
            regs += ASID_BITS + 1;
        }
        TlbDesign::Ms => {
            // The 2MB and 1GB entry classes: their arrays, comparators,
            // and LRU bookkeeping, plus class-hit arbitration on the
            // shared lookup port.
            let mc = MultiConfig::from_base(config);
            for cls in [mc.mega, mc.giga] {
                let e = cls.entries() as u64;
                luts += e * LUTS_PER_ENTRY + comparator_luts(cls) + lru_luts(cls);
                regs += e * ENTRY_REG_BITS + lru_regs(cls);
            }
            luts += 120;
        }
    }
    AreaEstimate {
        luts,
        registers: regs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::paper_table5;

    fn all_configs() -> Vec<TlbConfig> {
        // The six multi-entry configurations of Table 5.
        vec![
            TlbConfig::fa(32).unwrap(),
            TlbConfig::sa(32, 2).unwrap(),
            TlbConfig::sa(32, 4).unwrap(),
            TlbConfig::fa(128).unwrap(),
            TlbConfig::sa(128, 2).unwrap(),
            TlbConfig::sa(128, 4).unwrap(),
        ]
    }

    #[test]
    fn area_grows_with_entries() {
        for design in TlbDesign::ALL {
            let small = estimate(design, TlbConfig::sa(32, 4).unwrap());
            let large = estimate(design, TlbConfig::sa(128, 4).unwrap());
            assert!(large.luts > small.luts, "{design}");
            assert!(large.registers > small.registers, "{design}");
        }
    }

    #[test]
    fn rf_costs_more_than_sp_costs_about_sa() {
        for config in all_configs() {
            let sa = estimate(TlbDesign::Sa, config);
            let sp = estimate(TlbDesign::Sp, config);
            let rf = estimate(TlbDesign::Rf, config);
            assert!(rf.luts > sp.luts && sp.luts > sa.luts, "{config}");
            // SP is within a fraction of a percent of SA (Section 6.6).
            let sp_overhead = (sp.luts - sa.luts) as f64 / sa.luts as f64;
            assert!(sp_overhead < 0.01, "{config}: SP overhead {sp_overhead}");
        }
    }

    #[test]
    fn rf_lut_overhead_is_single_digit_percent() {
        // Section 6.6: "RF TLB has about 6.5% more Slice LUTs" on average;
        // the abstract says "about 8% more logic".
        let config = TlbConfig::sa(32, 4).unwrap();
        let sa = estimate(TlbDesign::Sa, config);
        let rf = estimate(TlbDesign::Rf, config);
        let overhead = (rf.luts - sa.luts) as f64 / sa.luts as f64;
        assert!(
            (0.02..0.10).contains(&overhead),
            "RF LUT overhead {overhead}"
        );
    }

    #[test]
    fn temporal_designs_cost_about_sa_and_ms_pays_for_its_classes() {
        for config in all_configs() {
            let sa = estimate(TlbDesign::Sa, config);
            let fs = estimate(TlbDesign::Fs, config);
            let ft = estimate(TlbDesign::Ft, config);
            let ms = estimate(TlbDesign::Ms, config);
            // Clearing on switch is a reset line, not a datapath: under
            // a percent, like SP.
            let fs_overhead = (fs.luts - sa.luts) as f64 / sa.luts as f64;
            assert!(fs_overhead < 0.01, "{config}: FS overhead {fs_overhead}");
            assert!(ft.luts >= fs.luts, "{config}: fence.t adds the LRU wipe");
            // The extra 2M/1G classes are real storage.
            assert!(ms.luts > sa.luts && ms.registers > sa.registers, "{config}");
        }
    }

    #[test]
    fn fa_comparators_cost_more_than_sa() {
        let fa = estimate(TlbDesign::Sa, TlbConfig::fa(128).unwrap());
        let sa = estimate(TlbDesign::Sa, TlbConfig::sa(128, 4).unwrap());
        assert!(fa.luts > sa.luts, "FA pays for per-entry comparators");
    }

    #[test]
    fn model_tracks_paper_within_tolerance() {
        // Mean relative error <= 4%, max <= 10%, over all 19 paper rows.
        let rows = paper_table5();
        assert_eq!(rows.len(), 19);
        let mut lut_errs = Vec::new();
        let mut reg_errs = Vec::new();
        for row in rows {
            let e = estimate(row.design, row.config);
            lut_errs.push((e.luts as f64 - row.luts as f64).abs() / row.luts as f64);
            reg_errs.push((e.registers as f64 - row.registers as f64).abs() / row.registers as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            mean(&lut_errs) <= 0.04,
            "mean LUT error {}",
            mean(&lut_errs)
        );
        assert!(max(&lut_errs) <= 0.10, "max LUT error {}", max(&lut_errs));
        // Registers are noisier in the paper itself (the RF 2W 128 row
        // jumps to 45,823 while RF FA 128 stays at 34,252 — synthesis
        // heuristics, not structure), so the register bounds are looser.
        assert!(
            mean(&reg_errs) <= 0.06,
            "mean reg error {}",
            mean(&reg_errs)
        );
        assert!(max(&reg_errs) <= 0.16, "max reg error {}", max(&reg_errs));
    }

    #[test]
    fn baseline_calibration_matches_1e_row() {
        let e = estimate(TlbDesign::Sa, TlbConfig::single_entry());
        // Calibrated against the paper's 35,266 / 18,359.
        assert!((e.luts as i64 - 35_266).unsigned_abs() < 200, "{e:?}");
        assert!((e.registers as i64 - 18_359).unsigned_abs() < 200, "{e:?}");
    }
}
