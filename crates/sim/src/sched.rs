//! Round-robin co-scheduling of programs on one machine.
//!
//! The paper's "RSA with povray/omnetpp/xalancbmk/cactusADM" experiments
//! run the RSA victim in parallel with a TLB-intensive SPEC benchmark:
//! "the RSA continuously performs the decryption while the SPEC benchmark
//! runs in background" (Section 6.2). On our single simulated core this
//! becomes time-slice interleaving with the OS's context-switch policy
//! applied at each slice boundary.

use sectlb_tlb::types::Asid;

use crate::cpu::Instr;
use crate::machine::Machine;

/// A schedulable program: an address space plus its instruction stream.
#[derive(Debug, Clone)]
pub struct Program {
    /// The address space the program runs in.
    pub asid: Asid,
    /// The instructions to execute.
    pub instrs: Vec<Instr>,
}

impl Program {
    /// Creates a program.
    pub fn new(asid: Asid, instrs: Vec<Instr>) -> Program {
        Program { asid, instrs }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Runs `programs` round-robin with the given time quantum (instructions
/// per slice), until every program has finished. Programs that finish
/// early simply drop out of the rotation.
///
/// # Panics
///
/// Panics if `quantum` is zero.
pub fn run_round_robin(machine: &mut Machine, programs: &[Program], quantum: usize) {
    assert!(quantum > 0, "quantum must be positive");
    let mut cursors = vec![0usize; programs.len()];
    loop {
        let mut any_ran = false;
        for (program, cursor) in programs.iter().zip(cursors.iter_mut()) {
            if *cursor >= program.instrs.len() {
                continue;
            }
            any_ran = true;
            machine.exec(Instr::SetAsid(program.asid));
            let end = (*cursor + quantum).min(program.instrs.len());
            for &i in &program.instrs[*cursor..end] {
                machine.exec(i);
            }
            *cursor = end;
        }
        if !any_ran {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineBuilder, TlbDesign};
    use sectlb_tlb::types::Vpn;

    fn loads(base_page: u64, n: usize) -> Vec<Instr> {
        (0..n)
            .map(|i| Instr::Load((base_page + i as u64 % 4) << 12))
            .collect()
    }

    #[test]
    fn all_programs_complete() {
        let mut m = MachineBuilder::new().design(TlbDesign::Sa).build();
        let a = m.os_mut().create_process();
        let b = m.os_mut().create_process();
        m.os_mut().map_region(a, Vpn(0x10), 4).unwrap();
        m.os_mut().map_region(b, Vpn(0x20), 4).unwrap();
        let pa = Program::new(a, loads(0x10, 100));
        let pb = Program::new(b, loads(0x20, 37)); // different length
        run_round_robin(&mut m, &[pa, pb], 10);
        assert_eq!(m.stats().loads, 137);
    }

    #[test]
    fn interleaving_causes_context_switches() {
        let mut m = MachineBuilder::new().build();
        let a = m.os_mut().create_process();
        let b = m.os_mut().create_process();
        m.os_mut().map_region(a, Vpn(0x10), 4).unwrap();
        m.os_mut().map_region(b, Vpn(0x20), 4).unwrap();
        run_round_robin(
            &mut m,
            &[
                Program::new(a, loads(0x10, 40)),
                Program::new(b, loads(0x20, 40)),
            ],
            10,
        );
        // 4 slices each, alternating: at least 7 switches.
        assert!(m.stats().context_switches >= 7);
    }

    #[test]
    fn co_running_increases_tlb_pressure() {
        // A small-TLB machine: co-running two working sets misses more
        // than running them back to back.
        let build = || {
            let mut m = MachineBuilder::new()
                .tlb_config(sectlb_tlb::TlbConfig::sa(4, 2).unwrap())
                .build();
            let a = m.os_mut().create_process();
            let b = m.os_mut().create_process();
            m.os_mut().map_region(a, Vpn(0x10), 4).unwrap();
            m.os_mut().map_region(b, Vpn(0x20), 4).unwrap();
            (m, a, b)
        };
        let (mut seq, a, b) = build();
        run_round_robin(&mut seq, &[Program::new(a, loads(0x10, 200))], 1000);
        run_round_robin(&mut seq, &[Program::new(b, loads(0x20, 200))], 1000);
        let sequential_misses = seq.tlb_stats().misses;

        let (mut co, a, b) = build();
        run_round_robin(
            &mut co,
            &[
                Program::new(a, loads(0x10, 200)),
                Program::new(b, loads(0x20, 200)),
            ],
            4,
        );
        let co_misses = co.tlb_stats().misses;
        assert!(
            co_misses >= sequential_misses,
            "co-run: {co_misses} vs sequential: {sequential_misses}"
        );
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_panics() {
        let mut m = MachineBuilder::new().build();
        run_round_robin(&mut m, &[], 0);
    }
}
