//! The hardware page-table walker.
//!
//! On a TLB miss the walker performs one memory access per page-table
//! level (three for Sv39 without a page-walk cache — footnote 3 of the
//! paper notes RISC-V has none). Each level costs
//! [`WalkerConfig::cycles_per_level`] cycles, which dominates the
//! fast/slow timing difference the attacks measure.

use std::collections::BTreeMap;

use sectlb_tlb::tlb_trait::{Translator, WalkResult};
use sectlb_tlb::types::{Asid, Vpn};

use crate::os::{Os, Process};
use crate::phys_mem::FrameAllocator;

/// Timing parameters of the walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkerConfig {
    /// Memory-access latency per page-table level, in cycles.
    pub cycles_per_level: u64,
}

impl Default for WalkerConfig {
    /// 20 cycles per level: a full three-level walk costs 60 cycles,
    /// comfortably distinguishable from a 1-cycle hit — the property the
    /// timing attacks (and the miss-counter proxy) rely on.
    fn default() -> WalkerConfig {
        WalkerConfig {
            cycles_per_level: 20,
        }
    }
}

impl WalkerConfig {
    /// The cost of a full successful walk.
    pub fn full_walk_cycles(self) -> u64 {
        self.cycles_per_level * u64::from(crate::page_table::LEVELS)
    }
}

/// A walker borrowing the OS's process table for the duration of one TLB
/// access. Implements the [`Translator`] callback the TLB designs use.
pub struct OsWalker<'a> {
    processes: &'a mut BTreeMap<Asid, Process>,
    frames: &'a mut FrameAllocator,
    auto_map: bool,
    config: WalkerConfig,
}

impl<'a> OsWalker<'a> {
    /// Borrows the walker view out of the OS.
    pub fn new(os: &'a mut Os, config: WalkerConfig) -> OsWalker<'a> {
        let (processes, frames, auto_map) = os.walker_parts();
        OsWalker {
            processes,
            frames,
            auto_map,
            config,
        }
    }
}

impl Translator for OsWalker<'_> {
    fn translate(&mut self, asid: Asid, vpn: Vpn) -> WalkResult {
        let Some(process) = self.processes.get_mut(&asid) else {
            // Translating for a nonexistent address space: fault after one
            // root access.
            return WalkResult::fault(self.config.cycles_per_level);
        };
        let walk = process.page_table().walk(vpn);
        let mut cycles = self.config.cycles_per_level * u64::from(walk.levels_accessed);
        let mut pte = walk.pte;
        if pte.is_none() && self.auto_map && vpn.0 <= crate::page_table::MAX_VPN {
            // Footnote-5 behavior: the OS pre-generated a PTE for this
            // address; materialize it now at full-walk cost.
            if let Ok(frame) = self.frames.alloc() {
                let flags = crate::page_table::PteFlags::rw_user();
                if process
                    .page_table_mut()
                    .map(vpn, frame, flags, self.frames)
                    .is_ok()
                {
                    pte = process.page_table().walk(vpn).pte;
                    cycles = self.config.full_walk_cycles();
                }
            }
        }
        match pte {
            Some(p) => WalkResult {
                ppn: Some(p.ppn),
                cycles,
                size: p.size,
            },
            None => WalkResult::fault(cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sectlb_tlb::types::Ppn;

    #[test]
    fn walk_cost_is_three_levels_for_mapped_pages() {
        let mut os = Os::default();
        let p = os.create_process();
        os.map_page(p, Vpn(0x10)).unwrap();
        let mut w = OsWalker::new(&mut os, WalkerConfig::default());
        let r = w.translate(p, Vpn(0x10));
        assert!(r.ppn.is_some());
        assert_eq!(r.cycles, 60);
    }

    #[test]
    fn auto_map_materializes_missing_ptes() {
        let mut os = Os::default();
        let p = os.create_process();
        let mut w = OsWalker::new(&mut os, WalkerConfig::default());
        let r = w.translate(p, Vpn(0x77));
        assert!(r.ppn.is_some(), "auto-map provides a translation");
        // The mapping persists.
        let pt = os.process(p).unwrap().page_table();
        assert!(pt.walk(Vpn(0x77)).pte.is_some());
    }

    #[test]
    fn without_auto_map_unmapped_pages_fault() {
        let mut os = Os::default();
        os.auto_map = false;
        let p = os.create_process();
        let mut w = OsWalker::new(&mut os, WalkerConfig::default());
        let r = w.translate(p, Vpn(0x77));
        assert_eq!(r.ppn, None);
        assert_eq!(r.cycles, 20, "fault detected at the root costs 1 level");
    }

    #[test]
    fn unknown_asid_faults() {
        let mut os = Os::default();
        let mut w = OsWalker::new(&mut os, WalkerConfig::default());
        let r = w.translate(Asid(42), Vpn(0));
        assert_eq!(r.ppn, None);
    }

    #[test]
    fn translations_are_stable() {
        let mut os = Os::default();
        let p = os.create_process();
        os.map_page(p, Vpn(0x10)).unwrap();
        let first: Option<Ppn>;
        {
            let mut w = OsWalker::new(&mut os, WalkerConfig::default());
            first = w.translate(p, Vpn(0x10)).ppn;
        }
        let mut w = OsWalker::new(&mut os, WalkerConfig::default());
        assert_eq!(w.translate(p, Vpn(0x10)).ppn, first);
    }
}
