//! An Sv39-like three-level radix page table.
//!
//! RISC-V Sv39 translates a 27-bit virtual page number through three
//! levels of 512-entry tables. Each node occupies a physical frame (so
//! the walker's per-level memory accesses are structurally real), but node
//! contents live in host structures — the simulator never stores simulated
//! data bytes.
//!
//! The paper's footnote 3 notes that RISC-V (at the time) had no page-walk
//! cache, so every TLB miss pays the full walk; our walker model follows
//! that.

use sectlb_tlb::types::{PageSize, Ppn, Vpn};

use crate::phys_mem::{FrameAllocator, OutOfFrames};

/// Bits of VPN consumed per level.
pub const LEVEL_BITS: u32 = 9;
/// Number of levels.
pub const LEVELS: u32 = 3;
/// Maximum VPN representable (27 bits).
pub const MAX_VPN: u64 = (1 << (LEVEL_BITS * LEVELS)) - 1;

/// Permission and status flags of a leaf PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PteFlags {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
    /// User accessible.
    pub user: bool,
    /// Global mapping (survives ASID-targeted flushes on real hardware).
    pub global: bool,
}

impl PteFlags {
    /// Read/write user data pages — the common case for our workloads.
    pub fn rw_user() -> PteFlags {
        PteFlags {
            r: true,
            w: true,
            x: false,
            user: true,
            global: false,
        }
    }
}

/// A leaf page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The mapped physical page.
    pub ppn: Ppn,
    /// Permissions.
    pub flags: PteFlags,
    /// The mapping's granularity (Sv39 allows leaves above the last
    /// level: 2 MiB megapages at level 1, 1 GiB gigapages at the root).
    pub size: PageSize,
}

/// A sparse radix-node directory: `(slot, value)` pairs sorted by slot.
///
/// Machine setup maps on the order of a hundred pages, and campaign
/// trials build machines by the thousand, so node bookkeeping is squarely
/// on the hot path. A sorted vector beats a `HashMap` here twice over: no
/// SipHash per probe, and workloads map regions in ascending VPN order,
/// which the append fast path turns into a push. Lookups binary-search;
/// nodes hold at most 512 slots and in practice a handful.
#[derive(Debug, Clone)]
struct SlotMap<T> {
    slots: Vec<(u16, T)>,
}

impl<T> Default for SlotMap<T> {
    fn default() -> SlotMap<T> {
        SlotMap { slots: Vec::new() }
    }
}

impl<T> SlotMap<T> {
    /// Position of `idx`, or the insertion point keeping slots sorted.
    #[inline]
    fn find(&self, idx: u16) -> Result<usize, usize> {
        match self.slots.last() {
            None => Err(0),
            Some(&(last, _)) if last < idx => Err(self.slots.len()),
            Some(&(last, _)) if last == idx => Ok(self.slots.len() - 1),
            _ => self.slots.binary_search_by_key(&idx, |&(i, _)| i),
        }
    }

    #[inline]
    fn get(&self, idx: u16) -> Option<&T> {
        self.find(idx).ok().map(|p| &self.slots[p].1)
    }

    #[inline]
    fn get_mut(&mut self, idx: u16) -> Option<&mut T> {
        self.find(idx).ok().map(move |p| &mut self.slots[p].1)
    }

    fn contains(&self, idx: u16) -> bool {
        self.find(idx).is_ok()
    }

    /// Inserts `value` at `idx` if vacant; returns whether it inserted.
    fn try_insert(&mut self, idx: u16, value: T) -> bool {
        match self.find(idx) {
            Ok(_) => false,
            Err(p) => {
                self.slots.insert(p, (idx, value));
                true
            }
        }
    }

    fn remove(&mut self, idx: u16) -> Option<T> {
        self.find(idx).ok().map(|p| self.slots.remove(p).1)
    }

    fn iter(&self) -> impl Iterator<Item = (u16, &T)> {
        self.slots.iter().map(|(i, v)| (*i, v))
    }
}

/// One radix node: a frame plus its (sparse) entries. `leaves` at the
/// middle level hold megapage mappings; `leaves` at the root hold
/// gigapage mappings.
#[derive(Debug, Clone, Default)]
struct Node {
    frame: Ppn,
    children: SlotMap<Box<Node>>,
    leaves: SlotMap<Pte>,
}

/// Result of walking the table for a VPN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Walk {
    /// The found translation, or `None` on a fault.
    pub pte: Option<Pte>,
    /// Page-table memory accesses the walk performed (1..=3).
    pub levels_accessed: u32,
}

/// Errors from page-table updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The VPN exceeds the 27-bit Sv39 range.
    VpnOutOfRange(Vpn),
    /// The VPN is already mapped.
    AlreadyMapped(Vpn),
    /// No physical frames left for a new table node.
    OutOfFrames,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::VpnOutOfRange(v) => write!(f, "{v} exceeds the Sv39 range"),
            MapError::AlreadyMapped(v) => write!(f, "{v} is already mapped"),
            MapError::OutOfFrames => f.write_str("physical memory exhausted"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<OutOfFrames> for MapError {
    fn from(_: OutOfFrames) -> MapError {
        MapError::OutOfFrames
    }
}

/// A per-process three-level page table.
#[derive(Debug, Clone)]
pub struct PageTable {
    root: Node,
    mapped_pages: u64,
}

fn index_at(vpn: Vpn, level: u32) -> u16 {
    // level 0 is the root (highest bits).
    let shift = LEVEL_BITS * (LEVELS - 1 - level);
    ((vpn.0 >> shift) & ((1 << LEVEL_BITS) - 1)) as u16
}

impl PageTable {
    /// Creates an empty table whose root node occupies a fresh frame.
    ///
    /// # Errors
    ///
    /// Fails when no frame is available for the root.
    pub fn new(frames: &mut FrameAllocator) -> Result<PageTable, OutOfFrames> {
        Ok(PageTable {
            root: Node {
                frame: frames.alloc()?,
                ..Node::default()
            },
            mapped_pages: 0,
        })
    }

    /// Number of leaf mappings.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// The root node's frame (the value a `satp`-like register would hold).
    pub fn root_frame(&self) -> Ppn {
        self.root.frame
    }

    /// Maps `vpn` to `ppn`, allocating intermediate nodes as needed.
    ///
    /// # Errors
    ///
    /// Fails when `vpn` is out of range, already mapped, or intermediate
    /// node allocation runs out of frames.
    pub fn map(
        &mut self,
        vpn: Vpn,
        ppn: Ppn,
        flags: PteFlags,
        frames: &mut FrameAllocator,
    ) -> Result<(), MapError> {
        if vpn.0 > MAX_VPN {
            return Err(MapError::VpnOutOfRange(vpn));
        }
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = index_at(vpn, level);
            if !node.children.contains(idx) {
                // Allocate before inserting so an allocation failure
                // leaves the table untouched.
                let frame = frames.alloc()?;
                node.children.try_insert(
                    idx,
                    Box::new(Node {
                        frame,
                        ..Node::default()
                    }),
                );
            }
            node = node.children.get_mut(idx).expect("just inserted");
        }
        let leaf_idx = index_at(vpn, LEVELS - 1);
        if !node.leaves.try_insert(
            leaf_idx,
            Pte {
                ppn,
                flags,
                size: PageSize::Base,
            },
        ) {
            return Err(MapError::AlreadyMapped(vpn));
        }
        self.mapped_pages += 1;
        Ok(())
    }

    /// Maps a 2 MiB megapage (a level-1 leaf covering 512 base pages) at
    /// `vpn`, which must be 512-page aligned.
    ///
    /// # Errors
    ///
    /// Fails when `vpn` is out of range or unaligned, the slot is already
    /// mapped, or node allocation runs out of frames.
    pub fn map_mega(
        &mut self,
        vpn: Vpn,
        ppn: Ppn,
        flags: PteFlags,
        frames: &mut FrameAllocator,
    ) -> Result<(), MapError> {
        if vpn.0 > MAX_VPN || vpn != PageSize::Mega.align(vpn) {
            return Err(MapError::VpnOutOfRange(vpn));
        }
        let idx0 = index_at(vpn, 0);
        if !self.root.children.contains(idx0) {
            let frame = frames.alloc()?;
            self.root.children.try_insert(
                idx0,
                Box::new(Node {
                    frame,
                    ..Node::default()
                }),
            );
        }
        let mid = self.root.children.get_mut(idx0).expect("just inserted");
        let idx1 = index_at(vpn, 1);
        if mid.leaves.contains(idx1) || mid.children.contains(idx1) {
            return Err(MapError::AlreadyMapped(vpn));
        }
        mid.leaves.try_insert(
            idx1,
            Pte {
                ppn,
                flags,
                size: PageSize::Mega,
            },
        );
        self.mapped_pages += PageSize::Mega.span_pages();
        Ok(())
    }

    /// Maps a 1 GiB gigapage (a root-level leaf covering 512² base pages)
    /// at `vpn`, which must be 512²-page aligned.
    ///
    /// # Errors
    ///
    /// Fails when `vpn` is out of range or unaligned, or the root slot
    /// already holds a mapping or a subtree.
    pub fn map_giga(&mut self, vpn: Vpn, ppn: Ppn, flags: PteFlags) -> Result<(), MapError> {
        if vpn.0 > MAX_VPN || vpn != PageSize::Giga.align(vpn) {
            return Err(MapError::VpnOutOfRange(vpn));
        }
        let idx0 = index_at(vpn, 0);
        if self.root.leaves.contains(idx0) || self.root.children.contains(idx0) {
            return Err(MapError::AlreadyMapped(vpn));
        }
        self.root.leaves.try_insert(
            idx0,
            Pte {
                ppn,
                flags,
                size: PageSize::Giga,
            },
        );
        self.mapped_pages += PageSize::Giga.span_pages();
        Ok(())
    }

    /// Removes the mapping for `vpn`; returns the removed PTE if present.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            node = node.children.get_mut(index_at(vpn, level))?;
        }
        let removed = node.leaves.remove(index_at(vpn, LEVELS - 1));
        if removed.is_some() {
            self.mapped_pages -= 1;
        }
        removed
    }

    /// Changes the flags of an existing mapping (the `mprotect()` of the
    /// Appendix B discussion); returns `false` if `vpn` is unmapped.
    pub fn protect(&mut self, vpn: Vpn, flags: PteFlags) -> bool {
        let Some(pte) = self.lookup_mut(vpn) else {
            return false;
        };
        pte.flags = flags;
        true
    }

    fn lookup_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            node = node.children.get_mut(index_at(vpn, level))?;
        }
        node.leaves.get_mut(index_at(vpn, LEVELS - 1))
    }

    /// Every leaf mapping `(vpn, pte)` currently in the table, in
    /// ascending VPN order. Megapage leaves appear once, at their aligned
    /// VPN. Used by the shadow oracle to capture a replayable image of an
    /// address space.
    pub fn mappings(&self) -> Vec<(Vpn, Pte)> {
        fn visit(node: &Node, base: u64, level: u32, out: &mut Vec<(Vpn, Pte)>) {
            let shift = LEVEL_BITS * (LEVELS - 1 - level);
            for (idx, pte) in node.leaves.iter() {
                out.push((Vpn(base | (u64::from(idx) << shift)), *pte));
            }
            for (idx, child) in node.children.iter() {
                visit(child, base | (u64::from(idx) << shift), level + 1, out);
            }
        }
        let mut out = Vec::new();
        visit(&self.root, 0, 0, &mut out);
        out.sort_by_key(|(vpn, _)| vpn.0);
        out
    }

    /// Walks the table for `vpn`, counting the per-level memory accesses a
    /// hardware walker would perform. Superpage leaves terminate the walk
    /// early — megapages after two levels, gigapages after one (cheaper
    /// walks, one of their benefits).
    pub fn walk(&self, vpn: Vpn) -> Walk {
        if vpn.0 > MAX_VPN {
            return Walk {
                pte: None,
                levels_accessed: 1,
            };
        }
        let mut node = &self.root;
        for level in 0..LEVELS - 1 {
            // A leaf above the last level is a superpage mapping: a
            // gigapage at the root, a megapage at the middle level.
            if let Some(pte) = node.leaves.get(index_at(vpn, level)) {
                return Walk {
                    pte: Some(*pte),
                    levels_accessed: level + 1,
                };
            }
            match node.children.get(index_at(vpn, level)) {
                Some(child) => node = child,
                None => {
                    return Walk {
                        pte: None,
                        levels_accessed: level + 1,
                    }
                }
            }
        }
        Walk {
            pte: node.leaves.get(index_at(vpn, LEVELS - 1)).copied(),
            levels_accessed: LEVELS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PageTable, FrameAllocator) {
        let mut frames = FrameAllocator::new(1 << 16);
        let pt = PageTable::new(&mut frames).unwrap();
        (pt, frames)
    }

    #[test]
    fn map_then_walk_roundtrip() {
        let (mut pt, mut frames) = setup();
        let ppn = frames.alloc().unwrap();
        pt.map(Vpn(0x12345), ppn, PteFlags::rw_user(), &mut frames)
            .unwrap();
        let w = pt.walk(Vpn(0x12345));
        assert_eq!(w.pte.map(|p| p.ppn), Some(ppn));
        assert_eq!(w.levels_accessed, 3, "full walk touches all 3 levels");
    }

    #[test]
    fn unmapped_walk_faults_early() {
        let (pt, _) = setup();
        let w = pt.walk(Vpn(0x12345));
        assert_eq!(w.pte, None);
        assert_eq!(w.levels_accessed, 1, "fault detected at the root");
    }

    #[test]
    fn neighboring_page_faults_at_leaf_level() {
        let (mut pt, mut frames) = setup();
        let ppn = frames.alloc().unwrap();
        pt.map(Vpn(0x200), ppn, PteFlags::rw_user(), &mut frames)
            .unwrap();
        // Same leaf table, different slot: intermediate nodes exist.
        let w = pt.walk(Vpn(0x201));
        assert_eq!(w.pte, None);
        assert_eq!(w.levels_accessed, 3);
    }

    #[test]
    fn double_map_is_rejected() {
        let (mut pt, mut frames) = setup();
        let ppn = frames.alloc().unwrap();
        pt.map(Vpn(5), ppn, PteFlags::rw_user(), &mut frames)
            .unwrap();
        assert_eq!(
            pt.map(Vpn(5), ppn, PteFlags::rw_user(), &mut frames),
            Err(MapError::AlreadyMapped(Vpn(5)))
        );
    }

    #[test]
    fn out_of_range_vpn_is_rejected() {
        let (mut pt, mut frames) = setup();
        let bad = Vpn(MAX_VPN + 1);
        assert_eq!(
            pt.map(bad, Ppn(1), PteFlags::rw_user(), &mut frames),
            Err(MapError::VpnOutOfRange(bad))
        );
        assert_eq!(pt.walk(bad).pte, None);
    }

    #[test]
    fn unmap_removes_exactly_one_page() {
        let (mut pt, mut frames) = setup();
        for v in 0..4u64 {
            let ppn = frames.alloc().unwrap();
            pt.map(Vpn(v), ppn, PteFlags::rw_user(), &mut frames)
                .unwrap();
        }
        assert_eq!(pt.mapped_pages(), 4);
        assert!(pt.unmap(Vpn(2)).is_some());
        assert!(pt.unmap(Vpn(2)).is_none());
        assert_eq!(pt.mapped_pages(), 3);
        assert_eq!(pt.walk(Vpn(2)).pte, None);
        assert!(pt.walk(Vpn(3)).pte.is_some());
    }

    #[test]
    fn protect_updates_flags_in_place() {
        let (mut pt, mut frames) = setup();
        let ppn = frames.alloc().unwrap();
        pt.map(Vpn(9), ppn, PteFlags::rw_user(), &mut frames)
            .unwrap();
        let mut ro = PteFlags::rw_user();
        ro.w = false;
        assert!(pt.protect(Vpn(9), ro));
        assert_eq!(pt.walk(Vpn(9)).pte.unwrap().flags, ro);
        assert!(!pt.protect(Vpn(10), ro), "unmapped page");
    }

    #[test]
    fn megapage_mapping_walks_in_two_levels() {
        let (mut pt, mut frames) = setup();
        let frame = frames.alloc().unwrap();
        pt.map_mega(Vpn(0x200), frame, PteFlags::rw_user(), &mut frames)
            .unwrap();
        // Any base page within the 512-page span resolves via the mega PTE.
        for off in [0u64, 1, 255, 511] {
            let w = pt.walk(Vpn(0x200 + off));
            assert_eq!(w.pte.map(|p| p.size), Some(PageSize::Mega), "off {off}");
            assert_eq!(w.levels_accessed, 2, "mega walks stop a level early");
        }
        assert_eq!(pt.walk(Vpn(0x400)).pte, None, "outside the span");
        assert_eq!(pt.mapped_pages(), 512);
    }

    #[test]
    fn gigapage_mapping_walks_in_one_level() {
        let (mut pt, mut frames) = setup();
        let frame = frames.alloc().unwrap();
        let base = PageSize::Giga.span_pages(); // second gigapage slot
        pt.map_giga(Vpn(base), frame, PteFlags::rw_user()).unwrap();
        // Any base page within the 512²-page span resolves via the giga PTE.
        for off in [0u64, 1, 511, 512, PageSize::Giga.span_pages() - 1] {
            let w = pt.walk(Vpn(base + off));
            assert_eq!(w.pte.map(|p| p.size), Some(PageSize::Giga), "off {off}");
            assert_eq!(w.levels_accessed, 1, "giga walks stop at the root");
        }
        assert_eq!(pt.walk(Vpn(base - 1)).pte, None, "below the span");
        assert_eq!(
            pt.walk(Vpn(base + PageSize::Giga.span_pages())).pte,
            None,
            "above the span"
        );
        assert_eq!(pt.mapped_pages(), PageSize::Giga.span_pages());
        // The oracle's replay image lists the giga leaf once, at its base.
        let listed = pt.mappings();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, Vpn(base));
        assert_eq!(listed[0].1.size, PageSize::Giga);
    }

    #[test]
    fn unaligned_gigapage_is_rejected() {
        let (mut pt, mut frames) = setup();
        let frame = frames.alloc().unwrap();
        assert!(matches!(
            pt.map_giga(Vpn(0x200), frame, PteFlags::rw_user()),
            Err(MapError::VpnOutOfRange(_))
        ));
    }

    #[test]
    fn gigapage_conflicts_with_existing_subtrees() {
        let (mut pt, mut frames) = setup();
        let f1 = frames.alloc().unwrap();
        pt.map(Vpn(5), f1, PteFlags::rw_user(), &mut frames)
            .unwrap();
        let f2 = frames.alloc().unwrap();
        // Vpn(5) lives in the first gigapage span: its subtree occupies
        // the root slot the gigapage would need.
        assert_eq!(
            pt.map_giga(Vpn(0), f2, PteFlags::rw_user()),
            Err(MapError::AlreadyMapped(Vpn(0)))
        );
        // And the reverse: a gigapage blocks base mappings in its span.
        pt.map_giga(Vpn(PageSize::Giga.span_pages()), f2, PteFlags::rw_user())
            .unwrap();
        assert!(pt.walk(Vpn(PageSize::Giga.span_pages() + 77)).pte.is_some());
    }

    #[test]
    fn unaligned_megapage_is_rejected() {
        let (mut pt, mut frames) = setup();
        let frame = frames.alloc().unwrap();
        assert!(matches!(
            pt.map_mega(Vpn(0x201), frame, PteFlags::rw_user(), &mut frames),
            Err(MapError::VpnOutOfRange(_))
        ));
    }

    #[test]
    fn megapage_conflicts_with_existing_base_mappings() {
        let (mut pt, mut frames) = setup();
        let f1 = frames.alloc().unwrap();
        pt.map(Vpn(0x205), f1, PteFlags::rw_user(), &mut frames)
            .unwrap();
        let f2 = frames.alloc().unwrap();
        assert_eq!(
            pt.map_mega(Vpn(0x200), f2, PteFlags::rw_user(), &mut frames),
            Err(MapError::AlreadyMapped(Vpn(0x200)))
        );
    }

    #[test]
    fn out_of_order_mappings_stay_walkable() {
        // Exercises the SlotMap insertion path that is not an append:
        // mapping in descending/shuffled order must still produce a
        // sorted, fully walkable table.
        let (mut pt, mut frames) = setup();
        let vpns = [9u64, 3, 7, 1, 8, 0, 511, 2];
        for &v in &vpns {
            let ppn = frames.alloc().unwrap();
            pt.map(Vpn(v), ppn, PteFlags::rw_user(), &mut frames)
                .unwrap();
        }
        for &v in &vpns {
            assert!(pt.walk(Vpn(v)).pte.is_some(), "vpn {v}");
        }
        assert!(pt.walk(Vpn(4)).pte.is_none());
        let listed: Vec<u64> = pt.mappings().iter().map(|(v, _)| v.0).collect();
        let mut sorted = vpns.to_vec();
        sorted.sort_unstable();
        assert_eq!(listed, sorted);
    }

    #[test]
    fn distant_vpns_use_distinct_subtrees() {
        let (mut pt, mut frames) = setup();
        let before = frames.allocated();
        let a = frames.alloc().unwrap();
        pt.map(Vpn(0), a, PteFlags::rw_user(), &mut frames).unwrap();
        let mid = frames.allocated();
        let b = frames.alloc().unwrap();
        pt.map(Vpn(MAX_VPN), b, PteFlags::rw_user(), &mut frames)
            .unwrap();
        let after = frames.allocated();
        // Each distant mapping allocates its own two intermediate nodes.
        assert_eq!(mid - before, 3); // data frame + 2 nodes
        assert_eq!(after - mid, 3);
    }
}
