//! A tiny operating-system model.
//!
//! The paper's performance evaluation runs Linux; its security evaluation
//! relies on the OS for exactly four things, which this model provides:
//!
//! 1. assigning distinct ASIDs to processes;
//! 2. mapping memory regions (creating page-table entries);
//! 3. a context-switch TLB policy — today's Linux relies on ASIDs and does
//!    not flush, while Sanctum/SGX-style systems flush the whole TLB on
//!    every switch (Section 2.3);
//! 4. programming the secure-region registers of the RF TLB for a victim
//!    process, pre-generating page-table entries for every address the
//!    Random Fill Engine might look up (footnote 5 of the paper).

use std::collections::BTreeMap;

use sectlb_tlb::types::{Asid, SecureRegion, Vpn};

use crate::page_table::{MapError, PageTable, PteFlags};
use crate::phys_mem::FrameAllocator;

/// What the OS does to the TLB on a context switch (Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Rely on ASID tags; never flush (today's Linux).
    #[default]
    None,
    /// Flush the whole TLB on every switch (the Sanctum security monitor /
    /// Intel SGX behavior).
    FlushOnSwitch,
}

/// A process: an address space identified by an ASID.
#[derive(Debug)]
pub struct Process {
    asid: Asid,
    page_table: PageTable,
}

impl Process {
    /// The process's ASID.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The process's page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The process's page table, mutably.
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }
}

/// OS-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// The referenced ASID does not name a live process.
    NoSuchProcess(Asid),
    /// A page-table update failed.
    Map(MapError),
}

impl std::fmt::Display for OsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsError::NoSuchProcess(a) => write!(f, "no process with {a}"),
            OsError::Map(e) => write!(f, "mapping failed: {e}"),
        }
    }
}

impl std::error::Error for OsError {}

impl From<MapError> for OsError {
    fn from(e: MapError) -> OsError {
        OsError::Map(e)
    }
}

/// The OS model: a process table, a frame allocator, and policy knobs.
#[derive(Debug)]
pub struct Os {
    processes: BTreeMap<Asid, Process>,
    frames: FrameAllocator,
    next_asid: u16,
    flush_policy: FlushPolicy,
    /// When set, the walker transparently creates a mapping for any
    /// unmapped page it is asked to translate — modeling the paper's
    /// assumption that the OS has pre-generated PTEs for every address the
    /// hardware may look up (footnote 5). Enabled by default.
    pub auto_map: bool,
}

impl Os {
    /// A fresh OS with the given flush policy.
    pub fn new(flush_policy: FlushPolicy) -> Os {
        Os {
            processes: BTreeMap::new(),
            frames: FrameAllocator::default(),
            next_asid: 1,
            flush_policy,
            auto_map: true,
        }
    }

    /// The configured context-switch policy.
    pub fn flush_policy(&self) -> FlushPolicy {
        self.flush_policy
    }

    /// Creates a process with a fresh ASID and empty address space.
    ///
    /// # Panics
    ///
    /// Panics if physical memory is exhausted while allocating the root
    /// page-table frame, or if the 16-bit ASID space overflows.
    pub fn create_process(&mut self) -> Asid {
        let asid = Asid(self.next_asid);
        self.next_asid = self.next_asid.checked_add(1).expect("ASID space exhausted");
        let page_table =
            PageTable::new(&mut self.frames).expect("physical memory exhausted at boot");
        self.processes.insert(asid, Process { asid, page_table });
        asid
    }

    /// The process for `asid`.
    ///
    /// # Errors
    ///
    /// Fails when no such process exists.
    pub fn process(&self, asid: Asid) -> Result<&Process, OsError> {
        self.processes
            .get(&asid)
            .ok_or(OsError::NoSuchProcess(asid))
    }

    /// The process for `asid`, mutably.
    ///
    /// # Errors
    ///
    /// Fails when no such process exists.
    pub fn process_mut(&mut self, asid: Asid) -> Result<&mut Process, OsError> {
        self.processes
            .get_mut(&asid)
            .ok_or(OsError::NoSuchProcess(asid))
    }

    /// Maps `pages` fresh frames at `base` in `asid`'s address space.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist or mapping fails.
    pub fn map_region(&mut self, asid: Asid, base: Vpn, pages: u64) -> Result<(), OsError> {
        for i in 0..pages {
            self.map_page(asid, base.offset(i))?;
        }
        Ok(())
    }

    /// Maps one fresh frame at `vpn`; mapping an already-mapped page is a
    /// no-op (idempotent, as the pre-generation of footnote 5 requires).
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist or frames run out.
    pub fn map_page(&mut self, asid: Asid, vpn: Vpn) -> Result<(), OsError> {
        let process = self
            .processes
            .get_mut(&asid)
            .ok_or(OsError::NoSuchProcess(asid))?;
        if process.page_table.walk(vpn).pte.is_some() {
            return Ok(());
        }
        let frame = self.frames.alloc().map_err(MapError::from)?;
        process
            .page_table
            .map(vpn, frame, PteFlags::rw_user(), &mut self.frames)?;
        Ok(())
    }

    /// Maps a 2 MiB megapage at `base` (512-page aligned) in `asid`'s
    /// address space — the "large pages for the crypto library" software
    /// defense of Section 2.3.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist or mapping fails.
    pub fn map_mega_page(&mut self, asid: Asid, base: Vpn) -> Result<(), OsError> {
        let process = self
            .processes
            .get_mut(&asid)
            .ok_or(OsError::NoSuchProcess(asid))?;
        let frame = self.frames.alloc().map_err(MapError::from)?;
        process
            .page_table
            .map_mega(base, frame, PteFlags::rw_user(), &mut self.frames)?;
        Ok(())
    }

    /// Maps a 1 GiB gigapage at `base` (512²-page aligned) in `asid`'s
    /// address space — the largest translation granularity the Sv39-style
    /// walker supports, exercised by the multi-page-size TLB designs.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist or mapping fails.
    pub fn map_giga_page(&mut self, asid: Asid, base: Vpn) -> Result<(), OsError> {
        let process = self
            .processes
            .get_mut(&asid)
            .ok_or(OsError::NoSuchProcess(asid))?;
        let frame = self.frames.alloc().map_err(MapError::from)?;
        process
            .page_table
            .map_giga(base, frame, PteFlags::rw_user())?;
        Ok(())
    }

    /// Unmaps one page (e.g. to force later faults in tests).
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist.
    pub fn unmap_page(&mut self, asid: Asid, vpn: Vpn) -> Result<bool, OsError> {
        let process = self
            .processes
            .get_mut(&asid)
            .ok_or(OsError::NoSuchProcess(asid))?;
        Ok(process.page_table.unmap(vpn).is_some())
    }

    /// Registers `region` as the secure region of victim `asid` on behalf
    /// of the RF TLB: ensures every page of the region has a PTE, so RFE
    /// lookups never fault (footnote 5).
    ///
    /// The *machine* additionally programs the TLB's registers; the OS
    /// only prepares the page tables.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist or mapping fails.
    pub fn prepare_secure_region(
        &mut self,
        asid: Asid,
        region: SecureRegion,
    ) -> Result<(), OsError> {
        for vpn in region.iter().collect::<Vec<_>>() {
            self.map_page(asid, vpn)?;
        }
        Ok(())
    }

    /// ASIDs of all live processes, in ascending order.
    pub fn asids(&self) -> impl Iterator<Item = Asid> + '_ {
        self.processes.keys().copied()
    }

    /// The frame allocator (diagnostics).
    pub fn frames(&self) -> &FrameAllocator {
        &self.frames
    }

    /// Splits the OS into the pieces the walker needs (internal).
    pub(crate) fn walker_parts(
        &mut self,
    ) -> (&mut BTreeMap<Asid, Process>, &mut FrameAllocator, bool) {
        (&mut self.processes, &mut self.frames, self.auto_map)
    }
}

impl Default for Os {
    fn default() -> Os {
        Os::new(FlushPolicy::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_get_distinct_asids() {
        let mut os = Os::default();
        let a = os.create_process();
        let b = os.create_process();
        assert_ne!(a, b);
        assert!(os.process(a).is_ok());
        assert!(os.process(Asid(999)).is_err());
    }

    #[test]
    fn map_region_creates_walkable_ptes() {
        let mut os = Os::default();
        let p = os.create_process();
        os.map_region(p, Vpn(0x10), 4).unwrap();
        let pt = os.process(p).unwrap().page_table();
        for i in 0..4 {
            assert!(pt.walk(Vpn(0x10 + i)).pte.is_some());
        }
        assert!(pt.walk(Vpn(0x14)).pte.is_none());
    }

    #[test]
    fn map_page_is_idempotent() {
        let mut os = Os::default();
        let p = os.create_process();
        os.map_page(p, Vpn(7)).unwrap();
        let frames_before = os.frames().allocated();
        os.map_page(p, Vpn(7)).unwrap();
        assert_eq!(os.frames().allocated(), frames_before);
    }

    #[test]
    fn address_spaces_are_isolated() {
        let mut os = Os::default();
        let a = os.create_process();
        let b = os.create_process();
        os.map_page(a, Vpn(7)).unwrap();
        os.map_page(b, Vpn(7)).unwrap();
        let pa = os
            .process(a)
            .unwrap()
            .page_table()
            .walk(Vpn(7))
            .pte
            .unwrap();
        let pb = os
            .process(b)
            .unwrap()
            .page_table()
            .walk(Vpn(7))
            .pte
            .unwrap();
        assert_ne!(pa.ppn, pb.ppn, "same VPN maps to different frames");
    }

    #[test]
    fn secure_region_preparation_maps_every_page() {
        let mut os = Os::default();
        let v = os.create_process();
        os.prepare_secure_region(v, SecureRegion::new(Vpn(0x100), 31))
            .unwrap();
        let pt = os.process(v).unwrap().page_table();
        assert_eq!(pt.mapped_pages(), 31);
    }

    #[test]
    fn unmap_reports_presence() {
        let mut os = Os::default();
        let p = os.create_process();
        os.map_page(p, Vpn(3)).unwrap();
        assert_eq!(os.unmap_page(p, Vpn(3)), Ok(true));
        assert_eq!(os.unmap_page(p, Vpn(3)), Ok(false));
    }
}
