//! The simulated machine: CPU + TLB design + walker + OS.
//!
//! [`Machine`] is the top-level object the security benchmarks, workloads,
//! and performance harness drive. It is assembled by [`MachineBuilder`],
//! which selects one of the paper's three TLB designs and the system
//! parameters.

use sectlb_tlb::config::TlbConfig;
use sectlb_tlb::stats::TlbStats;
use sectlb_tlb::tlb_trait::TlbCore;
use sectlb_tlb::types::{Asid, SecureRegion, Vpn};
use sectlb_tlb::{InvalidationPolicy, RandomFillEviction, RfTlb, SaTlb, SpTlb, TlbHierarchy};

use crate::cpu::{ExecStats, Instr};
use crate::os::{FlushPolicy, Os, OsError};
use crate::walker::{OsWalker, WalkerConfig};

/// Which of the paper's TLB designs a machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlbDesign {
    /// Standard set-associative baseline.
    Sa,
    /// Static-Partition TLB (Section 4.1).
    Sp,
    /// Random-Fill TLB (Section 4.2).
    Rf,
}

impl TlbDesign {
    /// All three designs, in the paper's presentation order.
    pub const ALL: [TlbDesign; 3] = [TlbDesign::Sa, TlbDesign::Sp, TlbDesign::Rf];

    /// The design's short name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            TlbDesign::Sa => "SA",
            TlbDesign::Sp => "SP",
            TlbDesign::Rf => "RF",
        }
    }
}

impl std::fmt::Display for TlbDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder for a [`Machine`].
#[derive(Debug)]
pub struct MachineBuilder {
    design: TlbDesign,
    config: TlbConfig,
    seed: u64,
    flush_policy: FlushPolicy,
    walker: WalkerConfig,
    switch_cost: u64,
    rf_eviction: RandomFillEviction,
    rf_invalidation: InvalidationPolicy,
    sp_victim_ways: Option<usize>,
    itlb: Option<(TlbDesign, TlbConfig)>,
    l2: Option<(TlbDesign, TlbConfig, u64)>,
}

impl MachineBuilder {
    /// A builder with the paper's common defaults: SA TLB, 32 entries,
    /// 4 ways, no flush on context switch, 20-cycle page-table levels.
    pub fn new() -> MachineBuilder {
        MachineBuilder {
            design: TlbDesign::Sa,
            config: TlbConfig::sa(32, 4).expect("default geometry is valid"),
            seed: 0xd15ea5e,
            flush_policy: FlushPolicy::None,
            walker: WalkerConfig::default(),
            switch_cost: 20,
            rf_eviction: RandomFillEviction::default(),
            rf_invalidation: InvalidationPolicy::default(),
            sp_victim_ways: None,
            itlb: None,
            l2: None,
        }
    }

    /// Selects the TLB design.
    pub fn design(mut self, design: TlbDesign) -> MachineBuilder {
        self.design = design;
        self
    }

    /// Selects the TLB geometry.
    pub fn tlb_config(mut self, config: TlbConfig) -> MachineBuilder {
        self.config = config;
        self
    }

    /// Seeds the RF TLB's Random Fill Engine (ignored by other designs).
    pub fn seed(mut self, seed: u64) -> MachineBuilder {
        self.seed = seed;
        self
    }

    /// Sets the OS context-switch TLB policy.
    pub fn flush_policy(mut self, policy: FlushPolicy) -> MachineBuilder {
        self.flush_policy = policy;
        self
    }

    /// Sets the page-table walker timing.
    pub fn walker(mut self, walker: WalkerConfig) -> MachineBuilder {
        self.walker = walker;
        self
    }

    /// Sets the fixed context-switch cost in cycles.
    pub fn switch_cost(mut self, cycles: u64) -> MachineBuilder {
        self.switch_cost = cycles;
        self
    }

    /// Selects the RF TLB's random-fill eviction policy (ablation knob;
    /// ignored by other designs).
    pub fn rf_eviction(mut self, eviction: RandomFillEviction) -> MachineBuilder {
        self.rf_eviction = eviction;
        self
    }

    /// Overrides the SP TLB's victim-partition way count (defaults to half
    /// the ways; ignored by other designs).
    pub fn sp_victim_ways(mut self, ways: usize) -> MachineBuilder {
        self.sp_victim_ways = Some(ways);
        self
    }

    /// Selects the RF TLB's secure-page invalidation policy (the
    /// Appendix B extension; ignored by other designs).
    pub fn rf_invalidation(mut self, policy: InvalidationPolicy) -> MachineBuilder {
        self.rf_invalidation = policy;
        self
    }

    /// Adds an L2 TLB behind the D-TLB (Section 4's "other levels of
    /// TLB"): L1 misses are serviced by the L2 at `latency` cycles; only
    /// L2 misses walk the page table.
    pub fn l2(mut self, design: TlbDesign, config: TlbConfig, latency: u64) -> MachineBuilder {
        self.l2 = Some((design, config, latency));
        self
    }

    /// Adds an instruction TLB of the given design and geometry. The
    /// paper focuses on the L1 D-TLB but notes the designs "can be
    /// applied to instruction TLBs as well" (Section 4); with an I-TLB
    /// configured, every executed instruction also translates its code
    /// page (set by [`Instr::JumpTo`]).
    pub fn itlb(mut self, design: TlbDesign, config: TlbConfig) -> MachineBuilder {
        self.itlb = Some((design, config));
        self
    }

    fn make_tlb(&self, design: TlbDesign, config: TlbConfig, seed: u64) -> Box<dyn TlbCore> {
        match design {
            TlbDesign::Sa => Box::new(SaTlb::new(config)),
            TlbDesign::Sp => match self.sp_victim_ways {
                Some(n) => Box::new(SpTlb::with_victim_ways(config, n)),
                None => Box::new(SpTlb::new(config)),
            },
            TlbDesign::Rf => {
                let mut tlb = RfTlb::with_seed(config, seed);
                tlb.set_random_fill_eviction(self.rf_eviction);
                tlb.set_invalidation_policy(self.rf_invalidation);
                Box::new(tlb)
            }
        }
    }

    /// Builds the machine.
    pub fn build(self) -> Machine {
        let mut tlb = self.make_tlb(self.design, self.config, self.seed);
        if let Some((design, config, latency)) = self.l2 {
            let l2 = self.make_tlb(design, config, self.seed ^ 0x12);
            tlb = Box::new(TlbHierarchy::new(tlb, l2, latency));
        }
        let itlb = self
            .itlb
            .map(|(design, config)| self.make_tlb(design, config, self.seed ^ 0x17b));
        Machine {
            tlb,
            itlb,
            design: self.design,
            os: Os::new(self.flush_policy),
            walker: self.walker,
            switch_cost: self.switch_cost,
            current_asid: Asid(0),
            code_pages: std::collections::HashMap::new(),
            fetch_latch: None,
            stats: ExecStats::new(),
        }
    }
}

impl Default for MachineBuilder {
    fn default() -> MachineBuilder {
        MachineBuilder::new()
    }
}

/// A simulated single-core machine.
pub struct Machine {
    tlb: Box<dyn TlbCore>,
    itlb: Option<Box<dyn TlbCore>>,
    design: TlbDesign,
    os: Os,
    walker: WalkerConfig,
    switch_cost: u64,
    current_asid: Asid,
    /// Per-process current code page (the PC's page), set by `JumpTo`.
    code_pages: std::collections::HashMap<Asid, Vpn>,
    /// The fetch unit's translation latch: consecutive fetches from the
    /// same page reuse the last translation instead of re-accessing the
    /// I-TLB (as a real front end does). Cleared on context switches and
    /// jumps.
    fetch_latch: Option<(Asid, Vpn)>,
    stats: ExecStats,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("design", &self.design)
            .field("config", &self.tlb.config())
            .field("current_asid", &self.current_asid)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// The TLB design in use.
    pub fn design(&self) -> TlbDesign {
        self.design
    }

    /// The TLB (for stats and probing).
    pub fn tlb(&self) -> &dyn TlbCore {
        self.tlb.as_ref()
    }

    /// The TLB, mutably (for direct register programming in tests).
    pub fn tlb_mut(&mut self) -> &mut dyn TlbCore {
        self.tlb.as_mut()
    }

    /// The OS model.
    pub fn os(&self) -> &Os {
        &self.os
    }

    /// The OS model, mutably (process creation, mapping).
    pub fn os_mut(&mut self) -> &mut Os {
        &mut self.os
    }

    /// The currently executing address space.
    pub fn current_asid(&self) -> Asid {
        self.current_asid
    }

    /// Accumulated CPU counters.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The TLB's counters.
    pub fn tlb_stats(&self) -> &TlbStats {
        self.tlb.stats()
    }

    /// The instruction TLB, if configured.
    pub fn itlb(&self) -> Option<&dyn TlbCore> {
        self.itlb.as_deref()
    }

    /// The instruction TLB, mutably.
    pub fn itlb_mut(&mut self) -> Option<&mut (dyn TlbCore + '_)> {
        match &mut self.itlb {
            Some(t) => Some(t.as_mut()),
            None => None,
        }
    }

    /// The I-TLB's miss counter (0 when no I-TLB is configured).
    pub fn itlb_misses(&self) -> u64 {
        self.itlb.as_ref().map_or(0, |t| t.stats().misses)
    }

    /// Current TLB-miss count (the benchmark-visible CSR).
    pub fn tlb_misses(&self) -> u64 {
        self.tlb.stats().misses
    }

    /// Resets CPU and TLB counters (not TLB contents).
    pub fn reset_counters(&mut self) {
        self.stats.reset();
        self.tlb.reset_stats();
    }

    /// Instructions per cycle over everything executed so far.
    pub fn ipc(&self) -> Option<f64> {
        self.stats.ipc()
    }

    /// TLB misses per kilo instruction over everything executed so far.
    pub fn mpki(&self) -> Option<f64> {
        self.stats.mpki(self.tlb.stats().misses)
    }

    /// Registers `region` as the secure region of victim `asid`: prepares
    /// page tables (footnote 5) and programs the TLB's victim-ASID and
    /// secure-region registers. On designs without those registers the
    /// respective writes are ignored, so this is safe to call uniformly.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist or PTE pre-generation fails.
    pub fn protect_victim(&mut self, asid: Asid, region: SecureRegion) -> Result<(), OsError> {
        self.os.prepare_secure_region(asid, region)?;
        self.tlb.set_victim_asid(Some(asid));
        self.tlb.set_secure_region(Some(region));
        Ok(())
    }

    /// Performs the instruction fetch for this execution step: with an
    /// I-TLB configured and a code page established by `JumpTo`, the code
    /// page is translated (sequential fetches within the page hit).
    fn fetch(&mut self) {
        let Some(itlb) = &mut self.itlb else { return };
        let Some(&page) = self.code_pages.get(&self.current_asid) else {
            return;
        };
        // Sequential fetches within a page reuse the latched translation.
        if self.fetch_latch == Some((self.current_asid, page)) {
            return;
        }
        let mut walker = OsWalker::new(&mut self.os, self.walker);
        let r = itlb.access(self.current_asid, page, &mut walker);
        self.stats.cycles += r.walk_cycles;
        if r.fault {
            self.stats.faults += 1;
        } else {
            self.fetch_latch = Some((self.current_asid, page));
        }
    }

    /// Executes one instruction.
    pub fn exec(&mut self, instr: Instr) {
        self.fetch();
        match instr {
            Instr::Load(vaddr) | Instr::Store(vaddr) => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                if matches!(instr, Instr::Load(_)) {
                    self.stats.loads += 1;
                } else {
                    self.stats.stores += 1;
                }
                let vpn = Vpn::of_addr(vaddr);
                let asid = self.current_asid;
                let mut walker = OsWalker::new(&mut self.os, self.walker);
                let r = self.tlb.access(asid, vpn, &mut walker);
                self.stats.cycles += r.walk_cycles;
                if r.fault {
                    self.stats.faults += 1;
                }
            }
            Instr::Compute(n) => {
                self.stats.instret += n;
                self.stats.cycles += n;
            }
            Instr::SetAsid(asid) => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                if asid != self.current_asid {
                    self.stats.context_switches += 1;
                    self.stats.cycles += self.switch_cost;
                    self.fetch_latch = None;
                    if self.os.flush_policy() == FlushPolicy::FlushOnSwitch {
                        self.tlb.flush_all();
                        if let Some(itlb) = &mut self.itlb {
                            itlb.flush_all();
                        }
                    }
                }
                self.current_asid = asid;
            }
            Instr::FlushAll => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                self.tlb.flush_all();
                if let Some(itlb) = &mut self.itlb {
                    itlb.flush_all();
                }
                self.fetch_latch = None;
            }
            Instr::FlushAsid(asid) => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                self.tlb.flush_asid(asid);
                if let Some(itlb) = &mut self.itlb {
                    itlb.flush_asid(asid);
                }
                self.fetch_latch = None;
            }
            Instr::FlushPage(vaddr) => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                let asid = self.current_asid;
                // Invalidating a present entry takes an extra cycle — the
                // Flush + Flush channel of Appendix B.
                if self.tlb.flush_page(asid, Vpn::of_addr(vaddr)) {
                    self.stats.cycles += 1;
                }
                // A shootdown reaches the instruction side too.
                let vpn = Vpn::of_addr(vaddr);
                if let Some(itlb) = &mut self.itlb {
                    itlb.flush_page(asid, vpn);
                }
                if self.fetch_latch == Some((asid, vpn)) {
                    self.fetch_latch = None;
                }
            }
            Instr::ReadMissCounter => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                let misses = self.tlb.stats().misses;
                self.stats.counter_reads.push(misses);
            }
            Instr::JumpTo(vaddr) => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                self.code_pages
                    .insert(self.current_asid, Vpn::of_addr(vaddr));
                // A control transfer redirects the fetch stream.
                self.fetch_latch = None;
            }
        }
    }

    /// Registers a secure *code* region for the I-TLB (the instruction-
    /// side analogue of [`Machine::protect_victim`]). No-op when no I-TLB
    /// is configured.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist or PTE pre-generation fails.
    pub fn protect_victim_code(&mut self, asid: Asid, region: SecureRegion) -> Result<(), OsError> {
        self.os.prepare_secure_region(asid, region)?;
        if let Some(itlb) = &mut self.itlb {
            itlb.set_victim_asid(Some(asid));
            itlb.set_secure_region(Some(region));
        }
        Ok(())
    }

    /// Executes a straight-line program.
    pub fn run(&mut self, program: &[Instr]) {
        for &i in program {
            self.exec(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_with_process(design: TlbDesign) -> (Machine, Asid) {
        let mut m = MachineBuilder::new().design(design).build();
        let p = m.os_mut().create_process();
        m.os_mut().map_region(p, Vpn(0x10), 8).unwrap();
        m.exec(Instr::SetAsid(p));
        (m, p)
    }

    #[test]
    fn loads_translate_and_count() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        m.run(&[Instr::Load(0x10_000), Instr::Load(0x10_008)]);
        assert_eq!(m.tlb_stats().accesses, 2);
        assert_eq!(m.tlb_stats().misses, 1, "same page hits the second time");
        assert_eq!(m.stats().loads, 2);
    }

    #[test]
    fn misses_cost_walk_cycles() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        let c0 = m.stats().cycles;
        m.exec(Instr::Load(0x10_000)); // miss: 1 + 60
        let miss_cost = m.stats().cycles - c0;
        m.exec(Instr::Load(0x10_000)); // hit: 1
        let hit_cost = m.stats().cycles - c0 - miss_cost;
        assert_eq!(miss_cost, 61);
        assert_eq!(hit_cost, 1);
    }

    #[test]
    fn miss_counter_reads_capture_progression() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        m.run(&[
            Instr::ReadMissCounter,
            Instr::Load(0x10_000),
            Instr::ReadMissCounter,
            Instr::Load(0x10_000),
            Instr::ReadMissCounter,
        ]);
        assert_eq!(m.stats().counter_reads, vec![0, 1, 1]);
    }

    #[test]
    fn flush_on_switch_policy_flushes() {
        let mut m = MachineBuilder::new()
            .flush_policy(FlushPolicy::FlushOnSwitch)
            .build();
        let a = m.os_mut().create_process();
        let b = m.os_mut().create_process();
        m.os_mut().map_region(a, Vpn(0x10), 1).unwrap();
        m.run(&[Instr::SetAsid(a), Instr::Load(0x10_000)]);
        assert!(m.tlb().probe(a, Vpn(0x10)));
        m.exec(Instr::SetAsid(b));
        assert!(!m.tlb().probe(a, Vpn(0x10)), "switch flushed the TLB");
    }

    #[test]
    fn default_policy_keeps_entries_across_switches() {
        let (mut m, p) = machine_with_process(TlbDesign::Sa);
        m.exec(Instr::Load(0x10_000));
        let q = m.os_mut().create_process();
        m.exec(Instr::SetAsid(q));
        assert!(m.tlb().probe(p, Vpn(0x10)), "ASID tags avoid flushing");
    }

    #[test]
    fn flush_page_timing_reveals_presence() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        m.exec(Instr::Load(0x10_000));
        let c0 = m.stats().cycles;
        m.exec(Instr::FlushPage(0x10_000)); // present: 2 cycles
        let present_cost = m.stats().cycles - c0;
        let c1 = m.stats().cycles;
        m.exec(Instr::FlushPage(0x10_000)); // absent: 1 cycle
        let absent_cost = m.stats().cycles - c1;
        assert_eq!(present_cost, 2);
        assert_eq!(absent_cost, 1);
    }

    #[test]
    fn protect_victim_programs_rf_registers() {
        let mut m = MachineBuilder::new().design(TlbDesign::Rf).build();
        let v = m.os_mut().create_process();
        let region = SecureRegion::new(Vpn(0x100), 3);
        m.protect_victim(v, region).unwrap();
        m.exec(Instr::SetAsid(v));
        m.exec(Instr::Load(0x100_000));
        // The secure access was served through the no-fill buffer.
        assert_eq!(m.tlb_stats().no_fill_responses, 1);
        assert_eq!(m.tlb_stats().random_fills, 1);
    }

    #[test]
    fn protect_victim_is_harmless_on_sa() {
        let mut m = MachineBuilder::new().design(TlbDesign::Sa).build();
        let v = m.os_mut().create_process();
        m.protect_victim(v, SecureRegion::new(Vpn(0x100), 3))
            .unwrap();
        m.exec(Instr::SetAsid(v));
        m.exec(Instr::Load(0x100_000));
        assert_eq!(m.tlb_stats().no_fill_responses, 0);
    }

    #[test]
    fn ipc_reflects_tlb_behavior() {
        // A TLB-friendly program has higher IPC than a thrashing one.
        let (mut m1, _) = machine_with_process(TlbDesign::Sa);
        for _ in 0..100 {
            m1.exec(Instr::Load(0x10_000));
        }
        let (mut m2, p2) = machine_with_process(TlbDesign::Sa);
        m2.os_mut().map_region(p2, Vpn(0x1000), 256).unwrap();
        for i in 0..100u64 {
            m2.exec(Instr::Load((0x1000 + i * 4) << 12));
        }
        assert!(m1.ipc().unwrap() > m2.ipc().unwrap());
        assert!(m2.mpki().unwrap() > m1.mpki().unwrap());
    }

    #[test]
    fn reset_counters_clears_cpu_and_tlb() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        m.exec(Instr::Load(0x10_000));
        m.reset_counters();
        assert_eq!(m.stats().cycles, 0);
        assert_eq!(m.tlb_stats().accesses, 0);
    }

    #[test]
    fn itlb_translates_code_pages() {
        let mut m = MachineBuilder::new()
            .itlb(TlbDesign::Sa, TlbConfig::sa(8, 4).unwrap())
            .build();
        let p = m.os_mut().create_process();
        m.os_mut().map_region(p, Vpn(0x10), 2).unwrap();
        m.os_mut().map_region(p, Vpn(0x500), 2).unwrap(); // code
        m.run(&[
            Instr::SetAsid(p),
            Instr::JumpTo(0x500_000),
            Instr::Compute(3),
            Instr::Compute(3),
        ]);
        let stats = m.itlb().expect("configured").stats();
        // One miss on the first fetch from the code page; subsequent
        // sequential fetches reuse the fetch latch and do not re-access
        // the I-TLB at all.
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.accesses, 1);
    }

    #[test]
    fn jumping_between_code_pages_costs_itlb_misses() {
        let mut m = MachineBuilder::new()
            .itlb(TlbDesign::Sa, TlbConfig::single_entry())
            .build();
        let p = m.os_mut().create_process();
        m.os_mut().map_region(p, Vpn(0x500), 2).unwrap();
        m.run(&[Instr::SetAsid(p)]);
        for _ in 0..3 {
            m.run(&[
                Instr::JumpTo(0x500_000),
                Instr::Compute(1),
                Instr::JumpTo(0x501_000),
                Instr::Compute(1),
            ]);
        }
        // A 1-entry I-TLB thrashes between the two code pages.
        assert!(m.itlb_misses() >= 5, "misses = {}", m.itlb_misses());
    }

    #[test]
    fn without_itlb_jumps_are_noops() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        let before = m.stats().cycles;
        m.exec(Instr::JumpTo(0x999_000));
        assert_eq!(m.stats().cycles - before, 1, "just the jump itself");
        assert_eq!(m.itlb_misses(), 0);
    }

    #[test]
    fn flush_all_reaches_the_itlb_and_the_fetch_latch() {
        let mut m = MachineBuilder::new()
            .itlb(TlbDesign::Sa, TlbConfig::sa(8, 4).unwrap())
            .build();
        let p = m.os_mut().create_process();
        m.os_mut().map_region(p, Vpn(0x500), 1).unwrap();
        m.run(&[
            Instr::SetAsid(p),
            Instr::JumpTo(0x500_000),
            Instr::Compute(1),
        ]);
        assert!(m.itlb().expect("configured").probe(p, Vpn(0x500)));
        let misses = m.itlb_misses();
        m.run(&[Instr::FlushAll, Instr::Compute(1)]);
        assert!(!m.itlb().expect("configured").probe(p, Vpn(0x501)));
        // The post-flush fetch must re-miss: the latch cannot mask it.
        assert_eq!(m.itlb_misses(), misses + 1);
    }

    #[test]
    fn flush_page_reaches_the_itlb() {
        let mut m = MachineBuilder::new()
            .itlb(TlbDesign::Sa, TlbConfig::sa(8, 4).unwrap())
            .build();
        let p = m.os_mut().create_process();
        m.os_mut().map_region(p, Vpn(0x500), 1).unwrap();
        m.run(&[
            Instr::SetAsid(p),
            Instr::JumpTo(0x500_000),
            Instr::Compute(1),
        ]);
        m.exec(Instr::FlushPage(0x500_000));
        assert!(
            !m.itlb().expect("configured").probe(p, Vpn(0x500)),
            "shootdowns must reach the instruction side"
        );
    }

    #[test]
    fn protect_victim_code_programs_the_itlb() {
        let mut m = MachineBuilder::new()
            .itlb(TlbDesign::Rf, TlbConfig::sa(32, 8).unwrap())
            .build();
        let p = m.os_mut().create_process();
        m.protect_victim_code(p, SecureRegion::new(Vpn(0x500), 3))
            .unwrap();
        m.run(&[
            Instr::SetAsid(p),
            Instr::JumpTo(0x500_000),
            Instr::Compute(1),
        ]);
        let stats = m.itlb().expect("configured").stats();
        assert_eq!(stats.no_fill_responses, 1, "secure code fetch randomized");
    }

    #[test]
    fn compute_bursts_retire_n_instructions() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        let before = m.stats().instret;
        m.exec(Instr::Compute(50));
        assert_eq!(m.stats().instret - before, 50);
    }
}
