//! The simulated machine: CPU + TLB design + walker + OS.
//!
//! [`Machine`] is the top-level object the security benchmarks, workloads,
//! and performance harness drive. It is assembled by [`MachineBuilder`],
//! which selects one of the paper's three TLB designs and the system
//! parameters.

use sectlb_tlb::check::{CorruptionKind, IntegrityError, IntegrityKind, SnapshotEntry};
use sectlb_tlb::config::{MultiConfig, TlbConfig};
use sectlb_tlb::stats::TlbStats;
use sectlb_tlb::tlb_trait::{AccessResult, TlbCore};
use sectlb_tlb::types::{Asid, SecureRegion, Vpn};
use sectlb_tlb::{
    InvalidationPolicy, MsTlb, MsTlbRef, RandomFillEviction, RfTlb, RfTlbRef, SaTlb, SaTlbRef,
    SpTlb, SpTlbRef, TlbHierarchy, TlbUnit, TpTlb, TpTlbRef,
};

use crate::cpu::{ExecStats, Instr};
use crate::os::{FlushPolicy, Os, OsError};
use crate::shadow::{
    Invariant, MachineSetup, Oracle, OracleViolation, PlannedCorruption, SuspectReport,
    TraceCapture, TraceOp,
};
use crate::walker::{OsWalker, WalkerConfig};

/// Which TLB design a machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlbDesign {
    /// Standard set-associative baseline.
    Sa,
    /// Static-Partition TLB (Section 4.1).
    Sp,
    /// Random-Fill TLB (Section 4.2).
    Rf,
    /// Flush-on-switch temporal partitioning: every entry is invalidated
    /// on each context switch (the hardware analogue of the Sanctum/SGX
    /// flush policy of Section 2.3).
    Fs,
    /// `fence.t`-style full temporal partitioning: entries *and*
    /// replacement state are cleared on each context switch (Wistoff et
    /// al.).
    Ft,
    /// Multi-page-size split TLB: separate 4 KiB / 2 MiB / 1 GiB entry
    /// classes, each with its own geometry.
    Ms,
}

impl TlbDesign {
    /// The paper's three designs, in its presentation order. Kept at
    /// three: existing drivers and seeds index into this array, and their
    /// outputs are pinned byte-identical.
    pub const ALL: [TlbDesign; 3] = [TlbDesign::Sa, TlbDesign::Sp, TlbDesign::Rf];

    /// Every implemented design: the paper's three followed by the
    /// mitigation-survey additions. New designs are appended, never
    /// reordered — a design's position here is its stable `design_code`
    /// in seed derivation and repro files.
    pub const EXTENDED: [TlbDesign; 6] = [
        TlbDesign::Sa,
        TlbDesign::Sp,
        TlbDesign::Rf,
        TlbDesign::Fs,
        TlbDesign::Ft,
        TlbDesign::Ms,
    ];

    /// The design's short name.
    pub fn name(self) -> &'static str {
        match self {
            TlbDesign::Sa => "SA",
            TlbDesign::Sp => "SP",
            TlbDesign::Rf => "RF",
            TlbDesign::Fs => "FS",
            TlbDesign::Ft => "FT",
            TlbDesign::Ms => "MS",
        }
    }

    /// Parses [`TlbDesign::name`] output back (used by repro files).
    pub fn from_name(name: &str) -> Option<TlbDesign> {
        TlbDesign::EXTENDED.into_iter().find(|d| d.name() == name)
    }
}

impl std::fmt::Display for TlbDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder for a [`Machine`].
#[derive(Debug)]
pub struct MachineBuilder {
    design: TlbDesign,
    config: TlbConfig,
    seed: u64,
    flush_policy: FlushPolicy,
    walker: WalkerConfig,
    switch_cost: u64,
    rf_eviction: RandomFillEviction,
    rf_invalidation: InvalidationPolicy,
    sp_victim_ways: Option<usize>,
    itlb: Option<(TlbDesign, TlbConfig)>,
    l2: Option<(TlbDesign, TlbConfig, u64)>,
    oracle: Option<bool>,
    reference_path: bool,
}

impl MachineBuilder {
    /// A builder with the paper's common defaults: SA TLB, 32 entries,
    /// 4 ways, no flush on context switch, 20-cycle page-table levels.
    pub fn new() -> MachineBuilder {
        MachineBuilder {
            design: TlbDesign::Sa,
            config: TlbConfig::sa(32, 4).expect("default geometry is valid"),
            seed: 0xd15ea5e,
            flush_policy: FlushPolicy::None,
            walker: WalkerConfig::default(),
            switch_cost: 20,
            rf_eviction: RandomFillEviction::default(),
            rf_invalidation: InvalidationPolicy::default(),
            sp_victim_ways: None,
            itlb: None,
            l2: None,
            oracle: None,
            reference_path: false,
        }
    }

    /// Selects the TLB design.
    pub fn design(mut self, design: TlbDesign) -> MachineBuilder {
        self.design = design;
        self
    }

    /// Selects the TLB geometry.
    pub fn tlb_config(mut self, config: TlbConfig) -> MachineBuilder {
        self.config = config;
        self
    }

    /// Seeds the RF TLB's Random Fill Engine (ignored by other designs).
    pub fn seed(mut self, seed: u64) -> MachineBuilder {
        self.seed = seed;
        self
    }

    /// Sets the OS context-switch TLB policy.
    pub fn flush_policy(mut self, policy: FlushPolicy) -> MachineBuilder {
        self.flush_policy = policy;
        self
    }

    /// Sets the page-table walker timing.
    pub fn walker(mut self, walker: WalkerConfig) -> MachineBuilder {
        self.walker = walker;
        self
    }

    /// Sets the fixed context-switch cost in cycles.
    pub fn switch_cost(mut self, cycles: u64) -> MachineBuilder {
        self.switch_cost = cycles;
        self
    }

    /// Selects the RF TLB's random-fill eviction policy (ablation knob;
    /// ignored by other designs).
    pub fn rf_eviction(mut self, eviction: RandomFillEviction) -> MachineBuilder {
        self.rf_eviction = eviction;
        self
    }

    /// Overrides the SP TLB's victim-partition way count (defaults to half
    /// the ways; ignored by other designs).
    pub fn sp_victim_ways(mut self, ways: usize) -> MachineBuilder {
        self.sp_victim_ways = Some(ways);
        self
    }

    /// Selects the RF TLB's secure-page invalidation policy (the
    /// Appendix B extension; ignored by other designs).
    pub fn rf_invalidation(mut self, policy: InvalidationPolicy) -> MachineBuilder {
        self.rf_invalidation = policy;
        self
    }

    /// Adds an L2 TLB behind the D-TLB (Section 4's "other levels of
    /// TLB"): L1 misses are serviced by the L2 at `latency` cycles; only
    /// L2 misses walk the page table.
    pub fn l2(mut self, design: TlbDesign, config: TlbConfig, latency: u64) -> MachineBuilder {
        self.l2 = Some((design, config, latency));
        self
    }

    /// Enables or disables the shadow oracle (see [`crate::shadow`]).
    /// When not called, the oracle defaults to **on in debug builds** —
    /// so the entire test suite runs under lockstep checking — and **off
    /// in release builds**, where campaign drivers opt in per trial via
    /// `--oracle`. The oracle is read-only: enabling it never changes the
    /// machine's timing, statistics, or TLB contents.
    pub fn oracle(mut self, enabled: bool) -> MachineBuilder {
        self.oracle = Some(enabled);
        self
    }

    /// Adds an instruction TLB of the given design and geometry. The
    /// paper focuses on the L1 D-TLB but notes the designs "can be
    /// applied to instruction TLBs as well" (Section 4); with an I-TLB
    /// configured, every executed instruction also translates its code
    /// page (set by [`Instr::JumpTo`]).
    pub fn itlb(mut self, design: TlbDesign, config: TlbConfig) -> MachineBuilder {
        self.itlb = Some((design, config));
        self
    }

    /// Routes every TLB through the pre-overhaul slow path: array-of-
    /// structs entry storage, timestamp LRU, and dyn-trait dispatch
    /// ([`TlbUnit::Dyn`]). Behaviorally identical to the default fast
    /// path — the differential equivalence suite drives both in lockstep
    /// to prove it — and kept as the reference implementation.
    pub fn reference_path(mut self, enabled: bool) -> MachineBuilder {
        self.reference_path = enabled;
        self
    }

    /// A boxed single-level TLB (hierarchy components, reference path).
    fn make_core(&self, design: TlbDesign, config: TlbConfig, seed: u64) -> Box<dyn TlbCore> {
        if self.reference_path {
            return match design {
                TlbDesign::Sa => Box::new(SaTlbRef::new(config)),
                TlbDesign::Sp => match self.sp_victim_ways {
                    Some(n) => Box::new(SpTlbRef::with_victim_ways(config, n)),
                    None => Box::new(SpTlbRef::new(config)),
                },
                TlbDesign::Rf => {
                    let mut tlb = RfTlbRef::with_seed(config, seed);
                    tlb.set_random_fill_eviction(self.rf_eviction);
                    tlb.set_invalidation_policy(self.rf_invalidation);
                    Box::new(tlb)
                }
                TlbDesign::Fs => Box::new(TpTlbRef::flush_on_switch(config)),
                TlbDesign::Ft => Box::new(TpTlbRef::fence_t(config)),
                TlbDesign::Ms => Box::new(MsTlbRef::new(MultiConfig::from_base(config))),
            };
        }
        match design {
            TlbDesign::Sa => Box::new(SaTlb::new(config)),
            TlbDesign::Sp => match self.sp_victim_ways {
                Some(n) => Box::new(SpTlb::with_victim_ways(config, n)),
                None => Box::new(SpTlb::new(config)),
            },
            TlbDesign::Rf => {
                let mut tlb = RfTlb::with_seed(config, seed);
                tlb.set_random_fill_eviction(self.rf_eviction);
                tlb.set_invalidation_policy(self.rf_invalidation);
                Box::new(tlb)
            }
            TlbDesign::Fs => Box::new(TpTlb::flush_on_switch(config)),
            TlbDesign::Ft => Box::new(TpTlb::fence_t(config)),
            TlbDesign::Ms => Box::new(MsTlb::new(MultiConfig::from_base(config))),
        }
    }

    /// A single-level TLB as an enum-dispatched unit (the fast path), or
    /// a [`TlbUnit::Dyn`] when the reference path is selected.
    fn make_tlb(&self, design: TlbDesign, config: TlbConfig, seed: u64) -> TlbUnit {
        if self.reference_path {
            return TlbUnit::Dyn(self.make_core(design, config, seed));
        }
        match design {
            TlbDesign::Sa => SaTlb::new(config).into(),
            TlbDesign::Sp => match self.sp_victim_ways {
                Some(n) => SpTlb::with_victim_ways(config, n).into(),
                None => SpTlb::new(config).into(),
            },
            TlbDesign::Rf => {
                let mut tlb = RfTlb::with_seed(config, seed);
                tlb.set_random_fill_eviction(self.rf_eviction);
                tlb.set_invalidation_policy(self.rf_invalidation);
                tlb.into()
            }
            TlbDesign::Fs => TpTlb::flush_on_switch(config).into(),
            TlbDesign::Ft => TpTlb::fence_t(config).into(),
            TlbDesign::Ms => MsTlb::new(MultiConfig::from_base(config)).into(),
        }
    }

    /// Builds the machine.
    pub fn build(self) -> Machine {
        let tlb = if let Some((design, config, latency)) = self.l2 {
            let l1 = self.make_core(self.design, self.config, self.seed);
            let l2 = self.make_core(design, config, self.seed ^ 0x12);
            let hier = TlbHierarchy::new(l1, l2, latency);
            if self.reference_path {
                TlbUnit::Dyn(Box::new(hier))
            } else {
                TlbUnit::Hier(hier)
            }
        } else {
            self.make_tlb(self.design, self.config, self.seed)
        };
        let itlb = self
            .itlb
            .map(|(design, config)| self.make_tlb(design, config, self.seed ^ 0x17b));
        let oracle = self.oracle.unwrap_or(cfg!(debug_assertions)).then(|| {
            Box::new(Oracle::new(MachineSetup {
                design: self.design,
                entries: self.config.entries(),
                ways: self.config.ways(),
                seed: self.seed,
                flush_policy: self.flush_policy,
                switch_cost: self.switch_cost,
                cycles_per_level: self.walker.cycles_per_level,
                rf_eviction: self.rf_eviction,
                rf_invalidation: self.rf_invalidation,
                sp_victim_ways: self.sp_victim_ways,
                l2: self
                    .l2
                    .map(|(d, c, latency)| (d, c.entries(), c.ways(), latency)),
                itlb: self.itlb.map(|(d, c)| (d, c.entries(), c.ways())),
            }))
        });
        Machine {
            tlb,
            itlb,
            design: self.design,
            os: Os::new(self.flush_policy),
            walker: self.walker,
            switch_cost: self.switch_cost,
            current_asid: Asid(0),
            code_pages: std::collections::HashMap::new(),
            fetch_latch: None,
            stats: ExecStats::new(),
            oracle,
        }
    }
}

impl Default for MachineBuilder {
    fn default() -> MachineBuilder {
        MachineBuilder::new()
    }
}

/// A simulated single-core machine.
pub struct Machine {
    tlb: TlbUnit,
    itlb: Option<TlbUnit>,
    design: TlbDesign,
    os: Os,
    walker: WalkerConfig,
    switch_cost: u64,
    current_asid: Asid,
    /// Per-process current code page (the PC's page), set by `JumpTo`.
    code_pages: std::collections::HashMap<Asid, Vpn>,
    /// The fetch unit's translation latch: consecutive fetches from the
    /// same page reuse the last translation instead of re-accessing the
    /// I-TLB (as a real front end does). Cleared on context switches and
    /// jumps.
    fetch_latch: Option<(Asid, Vpn)>,
    stats: ExecStats,
    /// Shadow-oracle state, when enabled (see [`crate::shadow`]).
    oracle: Option<Box<Oracle>>,
}

/// TLB state captured immediately before an instruction executes, for the
/// oracle's post-execution checks.
struct OraclePre {
    snapshot: Vec<SnapshotEntry>,
    stats: TlbStats,
    asid: Asid,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("design", &self.design)
            .field("config", &self.tlb.config())
            .field("current_asid", &self.current_asid)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// The TLB design in use.
    pub fn design(&self) -> TlbDesign {
        self.design
    }

    /// The TLB (for stats and probing).
    pub fn tlb(&self) -> &dyn TlbCore {
        self.tlb.as_core()
    }

    /// The TLB, mutably (for direct register programming in tests).
    ///
    /// Taints the shadow oracle: once external code has fiddled with the
    /// TLB directly, the oracle's reference model no longer describes the
    /// machine, so it goes inert instead of raising false reports.
    pub fn tlb_mut(&mut self) -> &mut dyn TlbCore {
        if let Some(o) = &mut self.oracle {
            o.tainted = true;
        }
        self.tlb.as_core_mut()
    }

    /// The OS model.
    pub fn os(&self) -> &Os {
        &self.os
    }

    /// The OS model, mutably (process creation, mapping).
    pub fn os_mut(&mut self) -> &mut Os {
        &mut self.os
    }

    /// The currently executing address space.
    pub fn current_asid(&self) -> Asid {
        self.current_asid
    }

    /// Accumulated CPU counters.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The TLB's counters.
    pub fn tlb_stats(&self) -> &TlbStats {
        self.tlb.stats()
    }

    /// The instruction TLB, if configured.
    pub fn itlb(&self) -> Option<&dyn TlbCore> {
        self.itlb.as_ref().map(TlbUnit::as_core)
    }

    /// The instruction TLB, mutably.
    pub fn itlb_mut(&mut self) -> Option<&mut (dyn TlbCore + '_)> {
        match &mut self.itlb {
            Some(t) => Some(t.as_core_mut()),
            None => None,
        }
    }

    /// The I-TLB's miss counter (0 when no I-TLB is configured).
    pub fn itlb_misses(&self) -> u64 {
        self.itlb.as_ref().map_or(0, |t| t.stats().misses)
    }

    /// Current TLB-miss count (the benchmark-visible CSR).
    pub fn tlb_misses(&self) -> u64 {
        self.tlb.stats().misses
    }

    /// Resets CPU and TLB counters (not TLB contents).
    pub fn reset_counters(&mut self) {
        self.stats.reset();
        self.tlb.reset_stats();
    }

    /// Instructions per cycle over everything executed so far.
    pub fn ipc(&self) -> Option<f64> {
        self.stats.ipc()
    }

    /// TLB misses per kilo instruction over everything executed so far.
    pub fn mpki(&self) -> Option<f64> {
        self.stats.mpki(self.tlb.stats().misses)
    }

    /// Registers `region` as the secure region of victim `asid`: prepares
    /// page tables (footnote 5) and programs the TLB's victim-ASID and
    /// secure-region registers. On designs without those registers the
    /// respective writes are ignored, so this is safe to call uniformly.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist or PTE pre-generation fails.
    pub fn protect_victim(&mut self, asid: Asid, region: SecureRegion) -> Result<(), OsError> {
        self.os.prepare_secure_region(asid, region)?;
        self.tlb.set_victim_asid(Some(asid));
        self.tlb.set_secure_region(Some(region));
        if let Some(o) = &mut self.oracle {
            o.protects.push((asid, region, false));
        }
        Ok(())
    }

    /// Performs the instruction fetch for this execution step: with an
    /// I-TLB configured and a code page established by `JumpTo`, the code
    /// page is translated (sequential fetches within the page hit).
    fn fetch(&mut self) {
        let Some(itlb) = &mut self.itlb else { return };
        let Some(&page) = self.code_pages.get(&self.current_asid) else {
            return;
        };
        // Sequential fetches within a page reuse the latched translation.
        if self.fetch_latch == Some((self.current_asid, page)) {
            return;
        }
        let mut walker = OsWalker::new(&mut self.os, self.walker);
        let r = itlb.access(self.current_asid, page, &mut walker);
        self.stats.cycles += r.walk_cycles;
        if r.fault {
            self.stats.faults += 1;
        } else {
            self.fetch_latch = Some((self.current_asid, page));
        }
    }

    /// Executes one instruction.
    pub fn exec(&mut self, instr: Instr) {
        let pre = self.oracle_pre(instr);
        let r = self.exec_inner(instr);
        if let Some(pre) = pre {
            self.oracle_post(instr, &pre, r);
        }
    }

    /// The instruction semantics proper; returns the D-TLB access result
    /// for memory instructions (the oracle checks it against a pure walk).
    fn exec_inner(&mut self, instr: Instr) -> Option<AccessResult> {
        self.fetch();
        match instr {
            Instr::Load(vaddr) | Instr::Store(vaddr) => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                if matches!(instr, Instr::Load(_)) {
                    self.stats.loads += 1;
                } else {
                    self.stats.stores += 1;
                }
                let vpn = Vpn::of_addr(vaddr);
                let asid = self.current_asid;
                let mut walker = OsWalker::new(&mut self.os, self.walker);
                let r = self.tlb.access(asid, vpn, &mut walker);
                self.stats.cycles += r.walk_cycles;
                if r.fault {
                    self.stats.faults += 1;
                }
                return Some(r);
            }
            Instr::Compute(n) => {
                self.stats.instret += n;
                self.stats.cycles += n;
            }
            Instr::SetAsid(asid) => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                if asid != self.current_asid {
                    self.stats.context_switches += 1;
                    self.stats.cycles += self.switch_cost;
                    self.fetch_latch = None;
                    if self.os.flush_policy() == FlushPolicy::FlushOnSwitch {
                        self.tlb.flush_all();
                        if let Some(itlb) = &mut self.itlb {
                            itlb.flush_all();
                        }
                    }
                    // The hardware-level temporal-partitioning hook: the
                    // FS/FT designs clear their state here; every other
                    // design's hook is a no-op (contents, counters, and
                    // timing all unchanged).
                    self.tlb.on_context_switch();
                    if let Some(itlb) = &mut self.itlb {
                        itlb.on_context_switch();
                    }
                }
                self.current_asid = asid;
            }
            Instr::FlushAll => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                self.tlb.flush_all();
                if let Some(itlb) = &mut self.itlb {
                    itlb.flush_all();
                }
                self.fetch_latch = None;
            }
            Instr::FlushAsid(asid) => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                self.tlb.flush_asid(asid);
                if let Some(itlb) = &mut self.itlb {
                    itlb.flush_asid(asid);
                }
                self.fetch_latch = None;
            }
            Instr::FlushPage(vaddr) => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                let asid = self.current_asid;
                // Invalidating a present entry takes an extra cycle — the
                // Flush + Flush channel of Appendix B.
                if self.tlb.flush_page(asid, Vpn::of_addr(vaddr)) {
                    self.stats.cycles += 1;
                }
                // A shootdown reaches the instruction side too.
                let vpn = Vpn::of_addr(vaddr);
                if let Some(itlb) = &mut self.itlb {
                    itlb.flush_page(asid, vpn);
                }
                if self.fetch_latch == Some((asid, vpn)) {
                    self.fetch_latch = None;
                }
            }
            Instr::ReadMissCounter => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                let misses = self.tlb.stats().misses;
                self.stats.counter_reads.push(misses);
            }
            Instr::JumpTo(vaddr) => {
                self.stats.instret += 1;
                self.stats.cycles += 1;
                self.code_pages
                    .insert(self.current_asid, Vpn::of_addr(vaddr));
                // A control transfer redirects the fetch stream.
                self.fetch_latch = None;
            }
        }
        None
    }

    /// Whether the shadow oracle was enabled at build time.
    pub fn oracle_enabled(&self) -> bool {
        self.oracle.is_some()
    }

    /// Violations the oracle has recorded so far (empty without an
    /// oracle). The oracle goes inert after its first violation, so in
    /// practice this holds at most one entry.
    pub fn oracle_violations(&self) -> &[OracleViolation] {
        self.oracle.as_ref().map_or(&[], |o| &o.violations)
    }

    /// Installs the campaign reporting context ("driver|cell|…"). Only
    /// machines with a context submit suspect captures to the process-wide
    /// sink (see [`crate::shadow::drain_suspects_with_prefix`]); machines
    /// without one — unit tests, replays — record violations locally only.
    pub fn set_oracle_context(&mut self, context: impl Into<String>) {
        if let Some(o) = &mut self.oracle {
            o.context = Some(context.into());
        }
    }

    /// Schedules a deterministic entry corruption to fire once `op_index`
    /// instructions have executed (retrying on later instructions while
    /// the TLB holds no eligible entry). Returns `false` when the oracle
    /// is disabled — corruption injection is the oracle's own fault-
    /// injection harness and is meaningless without its checks.
    pub fn schedule_corruption(
        &mut self,
        op_index: u64,
        selector: u64,
        kind: CorruptionKind,
    ) -> bool {
        match &mut self.oracle {
            Some(o) => {
                o.planned = Some(PlannedCorruption {
                    op_index,
                    selector,
                    kind,
                });
                true
            }
            None => false,
        }
    }

    /// Immediately corrupts one resident TLB entry (recording the
    /// injection in the trace) and runs the oracle's corruption sweep.
    /// Returns whether an entry was actually corrupted — `false` when the
    /// oracle is inert or no entry is eligible.
    pub fn inject_corruption_now(&mut self, selector: u64, kind: CorruptionKind) -> bool {
        if !self.oracle_active() {
            return false;
        }
        if self.tlb.corrupt_entry(selector, kind).is_none() {
            return false;
        }
        let o = self.oracle.as_mut().expect("oracle is active");
        o.ops.push(TraceOp::Corrupt { selector, kind });
        if let Some(v) = self.corruption_check() {
            self.record_violation(v);
        }
        true
    }

    /// Whether the oracle is present, untainted, and has not yet recorded
    /// a violation.
    fn oracle_active(&self) -> bool {
        self.oracle
            .as_ref()
            .is_some_and(|o| !o.tainted && o.violations.is_empty())
    }

    /// Pre-execution oracle hook: fires any due scheduled corruption,
    /// records the op in the trace, and snapshots the state the post-hook
    /// compares against. Returns `None` when no checking should happen.
    fn oracle_pre(&mut self, instr: Instr) -> Option<OraclePre> {
        if !self.oracle_active() {
            return None;
        }
        let due = self
            .oracle
            .as_ref()
            .and_then(|o| o.planned.filter(|p| o.exec_count >= p.op_index));
        if let Some(p) = due {
            // A corruption attempt on an empty TLB stays pending and is
            // retried on the next instruction.
            if self.tlb.corrupt_entry(p.selector, p.kind).is_some() {
                let o = self.oracle.as_mut().expect("oracle is active");
                o.planned = None;
                o.ops.push(TraceOp::Corrupt {
                    selector: p.selector,
                    kind: p.kind,
                });
                if let Some(v) = self.corruption_check() {
                    self.record_violation(v);
                    return None;
                }
            }
        }
        let needs_snapshot = matches!(
            instr,
            Instr::Load(_)
                | Instr::Store(_)
                | Instr::SetAsid(_)
                | Instr::FlushAll
                | Instr::FlushAsid(_)
                | Instr::FlushPage(_)
        );
        let o = self.oracle.as_mut().expect("oracle is active");
        o.ops.push(TraceOp::Exec(instr));
        o.exec_count += 1;
        Some(OraclePre {
            snapshot: if needs_snapshot {
                self.tlb.snapshot()
            } else {
                Vec::new()
            },
            stats: *self.tlb.stats(),
            asid: self.current_asid,
        })
    }

    /// Post-execution oracle hook: runs the per-instruction checks and
    /// records the first violation.
    fn oracle_post(&mut self, instr: Instr, pre: &OraclePre, r: Option<AccessResult>) {
        if !self.oracle_active() {
            return;
        }
        let op_index = self.oracle.as_ref().expect("oracle is active").ops.len() - 1;
        let checks_tlb = !matches!(
            instr,
            Instr::Compute(_) | Instr::ReadMissCounter | Instr::JumpTo(_)
        );
        let v = self.oracle_check(instr, pre, r, op_index).or_else(|| {
            checks_tlb
                .then(|| self.integrity_violation(op_index))
                .flatten()
        });
        if let Some(v) = v {
            self.record_violation(v);
        }
    }

    /// The currently effective `(victim, region)` protection for the
    /// D-TLB, per the oracle's recorded `protect_victim` calls.
    fn oracle_protection(&self) -> Option<(Asid, SecureRegion)> {
        let o = self.oracle.as_ref()?;
        o.protects
            .iter()
            .rev()
            .find(|&&(_, _, is_code)| !is_code)
            .map(|&(asid, region, _)| (asid, region))
    }

    /// The RF `Sec` classification of `(asid, vpn)` per the reference
    /// model.
    fn oracle_is_secure(&self, asid: Asid, vpn: Vpn) -> bool {
        self.oracle_protection()
            .is_some_and(|(victim, region)| victim == asid && region.contains(vpn))
    }

    fn violation(
        &self,
        op_index: usize,
        invariant: Invariant,
        expected: String,
        actual: String,
    ) -> OracleViolation {
        OracleViolation {
            design: self.design.name().to_string(),
            op_index,
            invariant,
            expected,
            actual,
        }
    }

    fn violation_from_integrity(&self, op_index: usize, e: &IntegrityError) -> OracleViolation {
        let invariant = match e.kind {
            IntegrityKind::Capacity => Invariant::Capacity,
            IntegrityKind::Partition => Invariant::Partition,
            IntegrityKind::SecBit => Invariant::SecBit,
            IntegrityKind::ClassIsolation => Invariant::ClassIsolation,
        };
        self.violation(
            op_index,
            invariant,
            format!("the {} structural invariant to hold", e.kind),
            e.detail.clone(),
        )
    }

    /// The design's structural invariants over the current TLB contents.
    fn integrity_violation(&self, op_index: usize) -> Option<OracleViolation> {
        let e = self.tlb.integrity().err()?;
        Some(self.violation_from_integrity(op_index, &e))
    }

    /// The per-instruction semantic checks (see [`crate::shadow`] for the
    /// invariant catalogue).
    fn oracle_check(
        &self,
        instr: Instr,
        pre: &OraclePre,
        r: Option<AccessResult>,
        op_index: usize,
    ) -> Option<OracleViolation> {
        match instr {
            Instr::Load(vaddr) | Instr::Store(vaddr) => {
                let vpn = Vpn::of_addr(vaddr);
                let asid = pre.asid;
                let r = r?;
                if r.hit {
                    // On MS the snapshot's `level` is the entry class
                    // (4K/2M/1G), all of which are L1-resident; elsewhere
                    // only level 0 is the L1.
                    let resident = pre.snapshot.iter().any(|s| {
                        (self.design == TlbDesign::Ms || s.level == 0) && s.entry.matches(asid, vpn)
                    });
                    if !resident {
                        return Some(self.violation(
                            op_index,
                            Invariant::HitSoundness,
                            format!(
                                "a resident L1 entry matching ({asid}, {vpn}) before the access"
                            ),
                            "hit reported with no matching entry resident".to_string(),
                        ));
                    }
                }
                let walked = self
                    .os
                    .process(asid)
                    .ok()
                    .and_then(|p| p.page_table().walk(vpn).pte);
                if r.fault {
                    if let Some(pte) = walked {
                        return Some(self.violation(
                            op_index,
                            Invariant::Translation,
                            format!(
                                "no fault: the page table maps ({asid}, {vpn}) -> {}",
                                pte.ppn
                            ),
                            "the access faulted".to_string(),
                        ));
                    }
                } else {
                    match (walked, r.ppn) {
                        (Some(pte), Some(ppn)) if pte.ppn == ppn => {}
                        (Some(pte), got) => {
                            return Some(self.violation(
                                op_index,
                                Invariant::Translation,
                                format!("({asid}, {vpn}) -> {} per the page table", pte.ppn),
                                format!("the TLB returned {got:?}"),
                            ));
                        }
                        (None, got) => {
                            return Some(self.violation(
                                op_index,
                                Invariant::Translation,
                                format!("a page fault: ({asid}, {vpn}) is unmapped"),
                                format!("the TLB returned {got:?} without faulting"),
                            ));
                        }
                    }
                }
                if self.design == TlbDesign::Rf
                    && !r.hit
                    && !r.fault
                    && self.oracle_is_secure(asid, vpn)
                    && self.tlb.stats().no_fill_responses == pre.stats.no_fill_responses
                {
                    return Some(self.violation(
                        op_index,
                        Invariant::NoFill,
                        format!("a no-fill response for the secure-region miss ({asid}, {vpn})"),
                        "the no-fill counter did not advance".to_string(),
                    ));
                }
                None
            }
            Instr::FlushAll => {
                let now = self.tlb.snapshot();
                if now.is_empty() {
                    None
                } else {
                    Some(self.violation(
                        op_index,
                        Invariant::FlushCompleteness,
                        "an empty TLB after FlushAll".to_string(),
                        format!("{} entries still resident", now.len()),
                    ))
                }
            }
            Instr::FlushAsid(asid) => {
                let now = self.tlb.snapshot();
                now.iter().find(|s| s.entry.asid == asid).map(|s| {
                    self.violation(
                        op_index,
                        Invariant::FlushCompleteness,
                        format!("no entries of {asid} after FlushAsid"),
                        format!(
                            "entry ({}, {}) still resident at level {} set {} way {}",
                            s.entry.asid, s.entry.vpn, s.level, s.set, s.way
                        ),
                    )
                })
            }
            Instr::FlushPage(vaddr) => {
                let vpn = Vpn::of_addr(vaddr);
                let asid = pre.asid;
                let now = self.tlb.snapshot();
                let rf_region_flush = self.design == TlbDesign::Rf
                    && self.oracle.as_ref().is_some_and(|o| {
                        o.setup.rf_invalidation == InvalidationPolicy::RegionFlush
                    })
                    && self.oracle_is_secure(asid, vpn);
                if rf_region_flush {
                    // RegionFlush drops every Sec entry; a non-Sec megapage
                    // entry covering the page legitimately survives, so the
                    // exact-match check does not apply.
                    now.iter().find(|s| s.level == 0 && s.entry.sec).map(|s| {
                        self.violation(
                            op_index,
                            Invariant::FlushCompleteness,
                            "no Sec entries after a secure-page shootdown under RegionFlush"
                                .to_string(),
                            format!(
                                "Sec entry ({}, {}) still resident",
                                s.entry.asid, s.entry.vpn
                            ),
                        )
                    })
                } else {
                    now.iter().find(|s| s.entry.matches(asid, vpn)).map(|s| {
                        self.violation(
                            op_index,
                            Invariant::FlushCompleteness,
                            format!("no entry matching ({asid}, {vpn}) after FlushPage"),
                            format!(
                                "entry ({}, {}) still resident at level {} set {} way {}",
                                s.entry.asid, s.entry.vpn, s.level, s.set, s.way
                            ),
                        )
                    })
                }
            }
            Instr::SetAsid(asid) => {
                let now = self.tlb.snapshot();
                let switched = asid != pre.asid;
                let temporal = matches!(self.design, TlbDesign::Fs | TlbDesign::Ft);
                if switched && self.os.flush_policy() == FlushPolicy::FlushOnSwitch {
                    if now.is_empty() {
                        None
                    } else {
                        Some(self.violation(
                            op_index,
                            Invariant::FlushCompleteness,
                            "an empty TLB after a flush-on-switch context switch".to_string(),
                            format!("{} entries still resident", now.len()),
                        ))
                    }
                } else if switched && temporal {
                    // Only L1 entries count: an L2 behind a temporal L1
                    // keeps its contents unless it is itself temporal.
                    let resident = now.iter().filter(|s| s.level == 0).count();
                    if resident != 0 {
                        Some(self.violation(
                            op_index,
                            Invariant::ClearCompleteness,
                            format!("an empty {} TLB after a context switch", self.design.name()),
                            format!("{resident} entries still resident"),
                        ))
                    } else if self.design == TlbDesign::Ft
                        && self.tlb.replacement_pristine() == Some(false)
                    {
                        Some(self.violation(
                            op_index,
                            Invariant::ClearCompleteness,
                            "pristine replacement state after a fence.t-style switch".to_string(),
                            "replacement residue survived the switch".to_string(),
                        ))
                    } else {
                        None
                    }
                } else if now != pre.snapshot {
                    Some(self.violation(
                        op_index,
                        Invariant::Provenance,
                        "bit-identical TLB contents across SetAsid".to_string(),
                        format!(
                            "contents changed from {} to {} entries",
                            pre.snapshot.len(),
                            now.len()
                        ),
                    ))
                } else {
                    None
                }
            }
            Instr::Compute(_) | Instr::ReadMissCounter | Instr::JumpTo(_) => None,
        }
    }

    /// The post-corruption sweep: structural invariants plus a full
    /// translation sweep of every resident entry against the page tables.
    /// Runs immediately after an injected corruption so the violation is
    /// attributed to the injection, not to whichever later access happens
    /// to touch the rotten entry.
    fn corruption_check(&self) -> Option<OracleViolation> {
        let op_index = self
            .oracle
            .as_ref()
            .map_or(0, |o| o.ops.len().saturating_sub(1));
        if let Some(v) = self.integrity_violation(op_index) {
            return Some(v);
        }
        for s in self.tlb.snapshot() {
            let e = s.entry;
            let walked = self
                .os
                .process(e.asid)
                .ok()
                .and_then(|p| p.page_table().walk(e.vpn).pte);
            let consistent = walked.is_some_and(|pte| pte.ppn == e.ppn && pte.size == e.size);
            if !consistent {
                return Some(self.violation(
                    op_index,
                    Invariant::Translation,
                    format!(
                        "a page-table mapping backing resident entry ({}, {}) -> {}",
                        e.asid, e.vpn, e.ppn
                    ),
                    match walked {
                        Some(pte) => format!(
                            "the page table maps ({}, {}) -> {} ({:?})",
                            e.asid, e.vpn, pte.ppn, pte.size
                        ),
                        None => format!("({}, {}) is not mapped", e.asid, e.vpn),
                    },
                ));
            }
        }
        None
    }

    /// Records a violation and — when a campaign context is installed —
    /// captures the full replayable trace and submits it to the suspect
    /// sink. The oracle goes inert afterwards.
    fn record_violation(&mut self, v: OracleViolation) {
        let mut maps: Vec<(
            Asid,
            Vpn,
            sectlb_tlb::types::PageSize,
            sectlb_tlb::types::Ppn,
        )> = Vec::new();
        for asid in self.os.asids().collect::<Vec<_>>() {
            let pt = self.os.process(asid).expect("asid is live").page_table();
            for (vpn, pte) in pt.mappings() {
                maps.push((asid, vpn, pte.size, pte.ppn));
            }
        }
        // PPN order is frame-allocation order — the replay contract.
        maps.sort_by_key(|&(_, _, _, ppn)| ppn.0);
        let processes = self.os.asids().count() as u16;
        let Some(o) = &mut self.oracle else { return };
        o.violations.push(v.clone());
        if let Some(context) = o.context.clone() {
            crate::shadow::submit_suspect(SuspectReport {
                context,
                capture: TraceCapture {
                    setup: o.setup,
                    processes,
                    maps: maps.into_iter().map(|(a, vp, s, _)| (a, vp, s)).collect(),
                    protects: o.protects.clone(),
                    ops: o.ops.clone(),
                    violation: v,
                },
            });
        }
    }

    /// Registers a secure *code* region for the I-TLB (the instruction-
    /// side analogue of [`Machine::protect_victim`]). No-op when no I-TLB
    /// is configured.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist or PTE pre-generation fails.
    pub fn protect_victim_code(&mut self, asid: Asid, region: SecureRegion) -> Result<(), OsError> {
        self.os.prepare_secure_region(asid, region)?;
        if let Some(itlb) = &mut self.itlb {
            itlb.set_victim_asid(Some(asid));
            itlb.set_secure_region(Some(region));
        }
        if let Some(o) = &mut self.oracle {
            o.protects.push((asid, region, true));
        }
        Ok(())
    }

    /// Executes a straight-line program.
    pub fn run(&mut self, program: &[Instr]) {
        self.run_batch(program);
    }

    /// Executes a program as one batch — the trial drivers' entry point.
    ///
    /// Semantically identical to calling [`Machine::exec`] per
    /// instruction (the differential equivalence suite pins this), but
    /// when the shadow oracle is inactive the whole batch runs through
    /// the instruction semantics directly, skipping the per-instruction
    /// oracle bookkeeping. An empty batch is a no-op.
    pub fn run_batch(&mut self, program: &[Instr]) {
        if self.oracle_active() {
            for &i in program {
                self.exec(i);
            }
            return;
        }
        for &i in program {
            self.exec_inner(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_with_process(design: TlbDesign) -> (Machine, Asid) {
        let mut m = MachineBuilder::new().design(design).build();
        let p = m.os_mut().create_process();
        m.os_mut().map_region(p, Vpn(0x10), 8).unwrap();
        m.exec(Instr::SetAsid(p));
        (m, p)
    }

    #[test]
    fn loads_translate_and_count() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        m.run(&[Instr::Load(0x10_000), Instr::Load(0x10_008)]);
        assert_eq!(m.tlb_stats().accesses, 2);
        assert_eq!(m.tlb_stats().misses, 1, "same page hits the second time");
        assert_eq!(m.stats().loads, 2);
    }

    #[test]
    fn misses_cost_walk_cycles() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        let c0 = m.stats().cycles;
        m.exec(Instr::Load(0x10_000)); // miss: 1 + 60
        let miss_cost = m.stats().cycles - c0;
        m.exec(Instr::Load(0x10_000)); // hit: 1
        let hit_cost = m.stats().cycles - c0 - miss_cost;
        assert_eq!(miss_cost, 61);
        assert_eq!(hit_cost, 1);
    }

    #[test]
    fn miss_counter_reads_capture_progression() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        m.run(&[
            Instr::ReadMissCounter,
            Instr::Load(0x10_000),
            Instr::ReadMissCounter,
            Instr::Load(0x10_000),
            Instr::ReadMissCounter,
        ]);
        assert_eq!(m.stats().counter_reads, vec![0, 1, 1]);
    }

    #[test]
    fn flush_on_switch_policy_flushes() {
        let mut m = MachineBuilder::new()
            .flush_policy(FlushPolicy::FlushOnSwitch)
            .build();
        let a = m.os_mut().create_process();
        let b = m.os_mut().create_process();
        m.os_mut().map_region(a, Vpn(0x10), 1).unwrap();
        m.run(&[Instr::SetAsid(a), Instr::Load(0x10_000)]);
        assert!(m.tlb().probe(a, Vpn(0x10)));
        m.exec(Instr::SetAsid(b));
        assert!(!m.tlb().probe(a, Vpn(0x10)), "switch flushed the TLB");
    }

    #[test]
    fn default_policy_keeps_entries_across_switches() {
        let (mut m, p) = machine_with_process(TlbDesign::Sa);
        m.exec(Instr::Load(0x10_000));
        let q = m.os_mut().create_process();
        m.exec(Instr::SetAsid(q));
        assert!(m.tlb().probe(p, Vpn(0x10)), "ASID tags avoid flushing");
    }

    #[test]
    fn flush_page_timing_reveals_presence() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        m.exec(Instr::Load(0x10_000));
        let c0 = m.stats().cycles;
        m.exec(Instr::FlushPage(0x10_000)); // present: 2 cycles
        let present_cost = m.stats().cycles - c0;
        let c1 = m.stats().cycles;
        m.exec(Instr::FlushPage(0x10_000)); // absent: 1 cycle
        let absent_cost = m.stats().cycles - c1;
        assert_eq!(present_cost, 2);
        assert_eq!(absent_cost, 1);
    }

    #[test]
    fn protect_victim_programs_rf_registers() {
        let mut m = MachineBuilder::new().design(TlbDesign::Rf).build();
        let v = m.os_mut().create_process();
        let region = SecureRegion::new(Vpn(0x100), 3);
        m.protect_victim(v, region).unwrap();
        m.exec(Instr::SetAsid(v));
        m.exec(Instr::Load(0x100_000));
        // The secure access was served through the no-fill buffer.
        assert_eq!(m.tlb_stats().no_fill_responses, 1);
        assert_eq!(m.tlb_stats().random_fills, 1);
    }

    #[test]
    fn protect_victim_is_harmless_on_sa() {
        let mut m = MachineBuilder::new().design(TlbDesign::Sa).build();
        let v = m.os_mut().create_process();
        m.protect_victim(v, SecureRegion::new(Vpn(0x100), 3))
            .unwrap();
        m.exec(Instr::SetAsid(v));
        m.exec(Instr::Load(0x100_000));
        assert_eq!(m.tlb_stats().no_fill_responses, 0);
    }

    #[test]
    fn ipc_reflects_tlb_behavior() {
        // A TLB-friendly program has higher IPC than a thrashing one.
        let (mut m1, _) = machine_with_process(TlbDesign::Sa);
        for _ in 0..100 {
            m1.exec(Instr::Load(0x10_000));
        }
        let (mut m2, p2) = machine_with_process(TlbDesign::Sa);
        m2.os_mut().map_region(p2, Vpn(0x1000), 256).unwrap();
        for i in 0..100u64 {
            m2.exec(Instr::Load((0x1000 + i * 4) << 12));
        }
        assert!(m1.ipc().unwrap() > m2.ipc().unwrap());
        assert!(m2.mpki().unwrap() > m1.mpki().unwrap());
    }

    #[test]
    fn reset_counters_clears_cpu_and_tlb() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        m.exec(Instr::Load(0x10_000));
        m.reset_counters();
        assert_eq!(m.stats().cycles, 0);
        assert_eq!(m.tlb_stats().accesses, 0);
    }

    #[test]
    fn itlb_translates_code_pages() {
        let mut m = MachineBuilder::new()
            .itlb(TlbDesign::Sa, TlbConfig::sa(8, 4).unwrap())
            .build();
        let p = m.os_mut().create_process();
        m.os_mut().map_region(p, Vpn(0x10), 2).unwrap();
        m.os_mut().map_region(p, Vpn(0x500), 2).unwrap(); // code
        m.run(&[
            Instr::SetAsid(p),
            Instr::JumpTo(0x500_000),
            Instr::Compute(3),
            Instr::Compute(3),
        ]);
        let stats = m.itlb().expect("configured").stats();
        // One miss on the first fetch from the code page; subsequent
        // sequential fetches reuse the fetch latch and do not re-access
        // the I-TLB at all.
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.accesses, 1);
    }

    #[test]
    fn jumping_between_code_pages_costs_itlb_misses() {
        let mut m = MachineBuilder::new()
            .itlb(TlbDesign::Sa, TlbConfig::single_entry())
            .build();
        let p = m.os_mut().create_process();
        m.os_mut().map_region(p, Vpn(0x500), 2).unwrap();
        m.run(&[Instr::SetAsid(p)]);
        for _ in 0..3 {
            m.run(&[
                Instr::JumpTo(0x500_000),
                Instr::Compute(1),
                Instr::JumpTo(0x501_000),
                Instr::Compute(1),
            ]);
        }
        // A 1-entry I-TLB thrashes between the two code pages.
        assert!(m.itlb_misses() >= 5, "misses = {}", m.itlb_misses());
    }

    #[test]
    fn without_itlb_jumps_are_noops() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        let before = m.stats().cycles;
        m.exec(Instr::JumpTo(0x999_000));
        assert_eq!(m.stats().cycles - before, 1, "just the jump itself");
        assert_eq!(m.itlb_misses(), 0);
    }

    #[test]
    fn flush_all_reaches_the_itlb_and_the_fetch_latch() {
        let mut m = MachineBuilder::new()
            .itlb(TlbDesign::Sa, TlbConfig::sa(8, 4).unwrap())
            .build();
        let p = m.os_mut().create_process();
        m.os_mut().map_region(p, Vpn(0x500), 1).unwrap();
        m.run(&[
            Instr::SetAsid(p),
            Instr::JumpTo(0x500_000),
            Instr::Compute(1),
        ]);
        assert!(m.itlb().expect("configured").probe(p, Vpn(0x500)));
        let misses = m.itlb_misses();
        m.run(&[Instr::FlushAll, Instr::Compute(1)]);
        assert!(!m.itlb().expect("configured").probe(p, Vpn(0x501)));
        // The post-flush fetch must re-miss: the latch cannot mask it.
        assert_eq!(m.itlb_misses(), misses + 1);
    }

    #[test]
    fn flush_page_reaches_the_itlb() {
        let mut m = MachineBuilder::new()
            .itlb(TlbDesign::Sa, TlbConfig::sa(8, 4).unwrap())
            .build();
        let p = m.os_mut().create_process();
        m.os_mut().map_region(p, Vpn(0x500), 1).unwrap();
        m.run(&[
            Instr::SetAsid(p),
            Instr::JumpTo(0x500_000),
            Instr::Compute(1),
        ]);
        m.exec(Instr::FlushPage(0x500_000));
        assert!(
            !m.itlb().expect("configured").probe(p, Vpn(0x500)),
            "shootdowns must reach the instruction side"
        );
    }

    #[test]
    fn protect_victim_code_programs_the_itlb() {
        let mut m = MachineBuilder::new()
            .itlb(TlbDesign::Rf, TlbConfig::sa(32, 8).unwrap())
            .build();
        let p = m.os_mut().create_process();
        m.protect_victim_code(p, SecureRegion::new(Vpn(0x500), 3))
            .unwrap();
        m.run(&[
            Instr::SetAsid(p),
            Instr::JumpTo(0x500_000),
            Instr::Compute(1),
        ]);
        let stats = m.itlb().expect("configured").stats();
        assert_eq!(stats.no_fill_responses, 1, "secure code fetch randomized");
    }

    #[test]
    fn fs_design_times_like_the_flush_on_switch_policy() {
        // The hardware flush-on-switch design and the OS flush policy are
        // the same mitigation at different layers; their timing and miss
        // behavior must coincide. FT adds only replacement-state clearing,
        // which is timing-unobservable, so it matches too.
        fn build(design: TlbDesign, policy: FlushPolicy) -> Machine {
            let mut m = MachineBuilder::new()
                .design(design)
                .flush_policy(policy)
                .build();
            for _ in 0..2 {
                let p = m.os_mut().create_process();
                m.os_mut().map_region(p, Vpn(0x10), 8).unwrap();
            }
            m
        }
        let mut prog = Vec::new();
        for round in 0..6u64 {
            prog.push(Instr::SetAsid(Asid(1 + (round % 2) as u16)));
            for i in 0..8 {
                prog.push(Instr::Load((0x10 + i) << 12));
            }
        }
        let mut sa = build(TlbDesign::Sa, FlushPolicy::FlushOnSwitch);
        let mut fs = build(TlbDesign::Fs, FlushPolicy::None);
        let mut ft = build(TlbDesign::Ft, FlushPolicy::None);
        sa.run(&prog);
        fs.run(&prog);
        ft.run(&prog);
        assert_eq!(sa.stats().cycles, fs.stats().cycles);
        assert_eq!(sa.tlb_stats().misses, fs.tlb_stats().misses);
        assert_eq!(fs.stats().cycles, ft.stats().cycles);
        assert_eq!(fs.tlb_stats(), ft.tlb_stats());
    }

    #[test]
    fn ms_design_translates_all_three_page_sizes() {
        use sectlb_tlb::types::PageSize;
        let giga_base = PageSize::Giga.span_pages();
        let mut m = MachineBuilder::new().design(TlbDesign::Ms).build();
        let p = m.os_mut().create_process();
        m.os_mut().map_region(p, Vpn(0x10), 2).unwrap();
        m.os_mut().map_mega_page(p, Vpn(0x1000)).unwrap();
        m.os_mut().map_giga_page(p, Vpn(giga_base)).unwrap();
        m.exec(Instr::SetAsid(p));
        m.exec(Instr::Load(0x10_000));
        m.exec(Instr::Load(0x1000 << 12));
        m.exec(Instr::Load(giga_base << 12));
        assert_eq!(m.tlb_stats().misses, 3, "one cold miss per class");
        // Different base pages within the superpage spans hit the
        // resident superpage entries — the whole point of large pages.
        m.exec(Instr::Load((0x1000 + 511) << 12));
        m.exec(Instr::Load((giga_base + 0x3_0000) << 12));
        assert_eq!(m.tlb_stats().misses, 3, "superpage spans hit");
        assert_eq!(m.tlb().probe_level(1, p, Vpn(0x1000)), Some(true));
        assert_eq!(m.tlb().probe_level(2, p, Vpn(giga_base)), Some(true));
        assert_eq!(m.oracle_violations(), &[]);
    }

    #[test]
    fn extended_designs_roundtrip_names_and_keep_codes_stable() {
        for d in TlbDesign::EXTENDED {
            assert_eq!(TlbDesign::from_name(d.name()), Some(d));
        }
        assert_eq!(TlbDesign::from_name("FS"), Some(TlbDesign::Fs));
        assert_eq!(TlbDesign::from_name("nonsense"), None);
        // ALL is a stable prefix of EXTENDED — seed derivation and the
        // pinned goldens depend on these positions never moving.
        assert_eq!(&TlbDesign::EXTENDED[..3], &TlbDesign::ALL);
    }

    #[test]
    fn compute_bursts_retire_n_instructions() {
        let (mut m, _) = machine_with_process(TlbDesign::Sa);
        let before = m.stats().instret;
        m.exec(Instr::Compute(50));
        assert_eq!(m.stats().instret - before, 50);
    }
}
