//! System substrate for the Secure TLBs reproduction.
//!
//! The paper evaluates its TLB designs inside a Rocket-Core RISC-V
//! processor running Linux on an FPGA. This crate provides the equivalent
//! substrate for simulation (see DESIGN.md for the substitution argument):
//!
//! - [`page_table`] — an Sv39-like three-level radix page table with
//!   frame-backed nodes;
//! - [`walker`] — the hardware page-table walker with a per-level cycle
//!   cost, implementing [`sectlb_tlb::Translator`];
//! - [`phys_mem`] — physical frame allocation;
//! - [`os`] — a tiny OS model: processes with ASIDs, region mapping,
//!   context-switch flush policies (none / Sanctum-style full flush), and
//!   secure-region programming including the RFE PTE pre-population of the
//!   paper's footnote 5;
//! - [`cpu`] — a trace-driven core executing [`Instr`] streams with
//!   cycle / instruction / TLB-miss counters, yielding the IPC and MPKI
//!   metrics of Section 6.2;
//! - [`machine`] — ties a CPU, a TLB design, the walker, and the OS into
//!   one simulated machine;
//! - [`sched`] — round-robin co-scheduling of two programs (the paper's
//!   "RSA + SPEC benchmark" experiments).
//!
//! # Example
//!
//! ```
//! use sectlb_sim::machine::MachineBuilder;
//! use sectlb_sim::cpu::Instr;
//! use sectlb_tlb::types::Vpn;
//!
//! let mut m = MachineBuilder::new().build();
//! let p = m.os_mut().create_process();
//! m.os_mut().map_region(p, Vpn(0x10), 4).unwrap();
//! m.run(&[
//!     Instr::SetAsid(p),
//!     Instr::Load(0x10_000),
//!     Instr::Load(0x10_000), // hit
//! ]);
//! assert_eq!(m.tlb().stats().hits, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod machine;
pub mod os;
pub mod page_table;
pub mod phys_mem;
pub mod sched;
pub mod shadow;
pub mod trace;
pub mod walker;

pub use cpu::{ExecStats, Instr};
pub use machine::{Machine, MachineBuilder, TlbDesign};
pub use os::{FlushPolicy, Os};
pub use page_table::{PageTable, Pte, PteFlags};
pub use phys_mem::FrameAllocator;
pub use shadow::{
    drain_suspects_with_prefix, replay, Invariant, MachineSetup, OracleViolation, SuspectReport,
    TraceCapture, TraceOp,
};
pub use walker::WalkerConfig;
