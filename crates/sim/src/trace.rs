//! Generic memory-trace helpers.
//!
//! Small building blocks for instruction streams; the richer, benchmark-
//! specific generators live in the `sectlb-workloads` crate.

use sectlb_tlb::types::{Vpn, PAGE_SIZE};

use crate::cpu::Instr;

/// Loads sweeping `pages` consecutive pages starting at `base`, one access
/// per page, repeated `rounds` times (a page-granular streaming pattern).
pub fn page_sweep(base: Vpn, pages: u64, rounds: usize) -> Vec<Instr> {
    let mut out = Vec::with_capacity(pages as usize * rounds);
    for _ in 0..rounds {
        for i in 0..pages {
            out.push(Instr::Load(base.offset(i).base_addr()));
        }
    }
    out
}

/// Loads with a fixed stride in bytes, starting at the base of `base`.
pub fn strided_loads(base: Vpn, stride_bytes: u64, count: usize) -> Vec<Instr> {
    (0..count as u64)
        .map(|i| Instr::Load(base.base_addr() + i * stride_bytes))
        .collect()
}

/// Interleaves loads with compute bursts: after every load, `compute` ALU
/// instructions execute (controls memory intensity, hence MPKI).
pub fn with_compute(loads: impl IntoIterator<Item = Instr>, compute: u64) -> Vec<Instr> {
    let mut out = Vec::new();
    for l in loads {
        out.push(l);
        if compute > 0 {
            out.push(Instr::Compute(compute));
        }
    }
    out
}

/// Repeated accesses to a single page (a hot loop touching one page).
pub fn hot_page(page: Vpn, count: usize) -> Vec<Instr> {
    vec![Instr::Load(page.base_addr()); count]
}

/// The number of distinct pages a strided access pattern touches.
pub fn pages_touched(stride_bytes: u64, count: usize) -> u64 {
    if count == 0 {
        return 0;
    }
    (stride_bytes * (count as u64 - 1)) / PAGE_SIZE + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sweep_touches_each_page_once_per_round() {
        let t = page_sweep(Vpn(0x10), 4, 3);
        assert_eq!(t.len(), 12);
        assert_eq!(t[0], Instr::Load(0x10_000));
        assert_eq!(t[4], Instr::Load(0x10_000), "round 2 restarts");
    }

    #[test]
    fn strided_loads_advance_by_stride() {
        let t = strided_loads(Vpn(1), 512, 3);
        assert_eq!(
            t,
            vec![
                Instr::Load(0x1000),
                Instr::Load(0x1200),
                Instr::Load(0x1400)
            ]
        );
    }

    #[test]
    fn with_compute_interleaves() {
        let t = with_compute([Instr::Load(0), Instr::Load(4096)], 10);
        assert_eq!(t.len(), 4);
        assert_eq!(t[1], Instr::Compute(10));
    }

    #[test]
    fn pages_touched_counts_page_crossings() {
        assert_eq!(pages_touched(4096, 4), 4, "page stride: one page each");
        assert_eq!(pages_touched(8, 4), 1, "small strides stay on one page");
        assert_eq!(pages_touched(0, 0), 0);
    }
}
