//! Physical frame allocation.
//!
//! The simulator does not store data contents — the workloads compute in
//! host Rust and only their *address traces* flow through the memory
//! system — so physical memory reduces to frame bookkeeping: allocation
//! for page-table nodes and mapped pages, with usage accounting.

use sectlb_tlb::types::Ppn;

/// A bump allocator handing out physical page frames.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    next: u64,
    limit: u64,
}

/// Physical memory exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfFrames;

impl std::fmt::Display for OutOfFrames {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("physical memory exhausted")
    }
}

impl std::error::Error for OutOfFrames {}

impl FrameAllocator {
    /// An allocator managing `frames` physical frames starting at frame 1
    /// (frame 0 is reserved as a null sentinel).
    pub fn new(frames: u64) -> FrameAllocator {
        FrameAllocator {
            next: 1,
            limit: frames,
        }
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when the configured capacity is exhausted.
    pub fn alloc(&mut self) -> Result<Ppn, OutOfFrames> {
        if self.next >= self.limit {
            return Err(OutOfFrames);
        }
        let ppn = Ppn(self.next);
        self.next += 1;
        Ok(ppn)
    }

    /// Frames handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next - 1
    }

    /// Frames still available.
    pub fn available(&self) -> u64 {
        self.limit.saturating_sub(self.next)
    }
}

impl Default for FrameAllocator {
    /// 1 GiB of physical memory (2^18 frames), matching the ZedBoard-class
    /// systems the paper deploys on.
    fn default() -> FrameAllocator {
        FrameAllocator::new(1 << 18)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_distinct_and_nonzero() {
        let mut a = FrameAllocator::new(100);
        let f1 = a.alloc().unwrap();
        let f2 = a.alloc().unwrap();
        assert_ne!(f1, f2);
        assert_ne!(f1, Ppn(0), "frame 0 is reserved");
        assert_eq!(a.allocated(), 2);
    }

    #[test]
    fn exhaustion_is_an_error_not_a_panic() {
        let mut a = FrameAllocator::new(3);
        assert!(a.alloc().is_ok());
        assert!(a.alloc().is_ok());
        assert_eq!(a.alloc(), Err(OutOfFrames));
        assert_eq!(a.available(), 0);
    }
}
