//! The shadow oracle: a reference model run in lockstep with the machine.
//!
//! The TLB designs of this reproduction are *state machines whose outputs
//! the security campaigns trust blindly*: a silently wrong translation or
//! a partition leak would not crash anything — it would quietly corrupt
//! every derived table. The shadow oracle closes that gap. When enabled
//! (the default in debug builds, opt-in via `--oracle` in release
//! campaigns), [`crate::Machine`] checks, on every executed instruction,
//! that the TLB's observable behavior agrees with a pure re-derivation
//! from the page tables and the design's documented semantics:
//!
//! - **Translation** — a non-faulting access returns exactly the PPN the
//!   process's page table maps, and faults only when no mapping exists;
//! - **HitSoundness** — a reported hit was preceded by a resident L1
//!   entry matching `(asid, vpn)`;
//! - **Capacity** — every resident entry sits in the set its tag indexes,
//!   megapage tags are 512-page aligned, and no `(asid, vpn, size)` is
//!   duplicated;
//! - **Partition** — SP entries never cross the victim/attacker way split;
//! - **SecBit** — the *Sec* bit agrees with the programmed secure region
//!   (and is never set on SA/SP);
//! - **NoFill** — an RF miss inside the secure region is answered through
//!   the no-fill buffer;
//! - **FlushCompleteness** — flush instructions remove everything they
//!   promise to remove;
//! - **Provenance** — operations that must not touch the TLB leave its
//!   contents bit-identical;
//! - **ClassIsolation** — the MS design keeps every entry in the entry
//!   class matching its page size;
//! - **ClearCompleteness** — the temporal designs (`FS`, `FT`) leave no
//!   entry behind after a context switch, and `FT` additionally leaves
//!   no replacement residue.
//!
//! A violation never panics. It is recorded as a structured
//! [`OracleViolation`], and — when the machine was given a reporting
//! context by a campaign driver — the full machine configuration, address-
//! space image, and operation trace are captured as a [`TraceCapture`] and
//! submitted to a process-wide sink, from which `secbench` drains them,
//! shrinks the trace to a minimal reproduction, and writes `repro/*.ron`
//! files that [`replay`] re-executes deterministically.
//!
//! # Replay determinism
//!
//! [`TraceCapture`] does not store physical frame numbers; it relies on
//! the simulator's bump [`crate::FrameAllocator`]: every `map` call
//! allocates the mapping's data frame *before* any intermediate
//! page-table-node frames, so data PPNs strictly increase in map-call
//! order. Dumping all leaf mappings at violation time sorted by PPN
//! therefore recovers the chronological map order, and replaying those
//! maps (after creating the same number of processes) reproduces the
//! identical frame assignment. Pre-mapping everything also makes the
//! walker's auto-map a no-op during replay, which is what lets the
//! shrinker drop operations without perturbing any translation. The one
//! construct that would break this — unmapping a page mid-run — is not
//! used by any campaign driver and is not supported in captures.

use std::sync::Mutex;

use sectlb_tlb::check::CorruptionKind;
use sectlb_tlb::config::TlbConfig;
use sectlb_tlb::types::{Asid, PageSize, SecureRegion, Vpn};
use sectlb_tlb::{InvalidationPolicy, RandomFillEviction};

use crate::cpu::Instr;
use crate::machine::{Machine, MachineBuilder, TlbDesign};
use crate::os::FlushPolicy;
use crate::walker::WalkerConfig;

/// The invariants the shadow oracle checks on every executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Returned PPNs agree with a pure page-table walk; faults occur
    /// exactly when no mapping exists.
    Translation,
    /// A reported hit was backed by a resident matching L1 entry.
    HitSoundness,
    /// Set indexing, megapage alignment, and duplicate freedom.
    Capacity,
    /// SP entries stay on their side of the victim/attacker way split.
    Partition,
    /// The *Sec* bit agrees with the programmed secure region.
    SecBit,
    /// RF secure-region misses are answered through the no-fill buffer.
    NoFill,
    /// Flushes remove everything they promise to remove.
    FlushCompleteness,
    /// Operations that must not touch the TLB leave it bit-identical.
    Provenance,
    /// MS entries live in the entry class matching their page size.
    ClassIsolation,
    /// Temporal-partitioning designs leave no entries behind after a
    /// context switch (`FT` additionally no replacement residue).
    ClearCompleteness,
}

impl Invariant {
    /// All checked invariants, in documentation order.
    pub const ALL: [Invariant; 10] = [
        Invariant::Translation,
        Invariant::HitSoundness,
        Invariant::Capacity,
        Invariant::Partition,
        Invariant::SecBit,
        Invariant::NoFill,
        Invariant::FlushCompleteness,
        Invariant::Provenance,
        Invariant::ClassIsolation,
        Invariant::ClearCompleteness,
    ];

    /// Stable machine-readable name (used in repro files).
    pub fn name(self) -> &'static str {
        match self {
            Invariant::Translation => "translation",
            Invariant::HitSoundness => "hit-soundness",
            Invariant::Capacity => "capacity",
            Invariant::Partition => "partition",
            Invariant::SecBit => "sec-bit",
            Invariant::NoFill => "no-fill",
            Invariant::FlushCompleteness => "flush-completeness",
            Invariant::Provenance => "provenance",
            Invariant::ClassIsolation => "class-isolation",
            Invariant::ClearCompleteness => "clear-completeness",
        }
    }

    /// Parses [`Invariant::name`] output back.
    pub fn from_name(name: &str) -> Option<Invariant> {
        Invariant::ALL.into_iter().find(|i| i.name() == name)
    }
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured report of one oracle check failing: which design, at
/// which point of the trace, which invariant, and the expected-vs-actual
/// evidence. Never a panic — campaign drivers render these as SUSPECT
/// cells and keep running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleViolation {
    /// Short name of the TLB design under check (`SA`, `SP`, `RF`).
    pub design: String,
    /// Index into the machine's recorded [`TraceOp`] sequence at which
    /// the check failed.
    pub op_index: usize,
    /// The violated invariant.
    pub invariant: Invariant,
    /// What the reference model required.
    pub expected: String,
    /// What the TLB actually did.
    pub actual: String,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] op {}: {} invariant violated — expected {}; actual: {}",
            self.design, self.op_index, self.invariant, self.expected, self.actual
        )
    }
}

/// One step of a machine's recorded operation trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// An executed instruction.
    Exec(Instr),
    /// A deterministic fault injection: corrupt one resident TLB entry.
    Corrupt {
        /// Selects which eligible entry is corrupted (modulo their count).
        selector: u64,
        /// Which field of the entry is flipped.
        kind: CorruptionKind,
    },
}

/// A corruption scheduled to fire once at least `op_index` instructions
/// have executed (retrying on later instructions while the TLB is empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedCorruption {
    /// Executed-instruction count at which to attempt the corruption.
    pub op_index: u64,
    /// Selects which eligible entry is corrupted (modulo their count).
    pub selector: u64,
    /// Which field of the entry is flipped.
    pub kind: CorruptionKind,
}

/// Everything [`MachineBuilder`] was told, captured so a machine can be
/// rebuilt identically during replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineSetup {
    /// The L1 D-TLB design.
    pub design: TlbDesign,
    /// L1 D-TLB total entries.
    pub entries: usize,
    /// L1 D-TLB ways per set.
    pub ways: usize,
    /// RFE seed.
    pub seed: u64,
    /// Context-switch TLB policy.
    pub flush_policy: FlushPolicy,
    /// Fixed context-switch cost in cycles.
    pub switch_cost: u64,
    /// Page-table walker cycles per level.
    pub cycles_per_level: u64,
    /// RF random-fill eviction policy.
    pub rf_eviction: RandomFillEviction,
    /// RF secure-page invalidation policy.
    pub rf_invalidation: InvalidationPolicy,
    /// SP victim-partition way override.
    pub sp_victim_ways: Option<usize>,
    /// L2 TLB as `(design, entries, ways, latency)`, if configured.
    pub l2: Option<(TlbDesign, usize, usize, u64)>,
    /// I-TLB as `(design, entries, ways)`, if configured.
    pub itlb: Option<(TlbDesign, usize, usize)>,
}

/// A self-contained, replayable image of a machine run that ended in an
/// oracle violation: the builder configuration, the address-space image
/// (in frame-allocation order — see the module docs on determinism), the
/// protection calls, the operation trace, and the violation itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCapture {
    /// The machine configuration.
    pub setup: MachineSetup,
    /// Number of processes to create (ASIDs are assigned 1..=processes).
    pub processes: u16,
    /// Every leaf mapping of every process, sorted by physical frame
    /// number — i.e. in the original allocation order.
    pub maps: Vec<(Asid, Vpn, PageSize)>,
    /// `protect_victim` / `protect_victim_code` calls, in order; the
    /// `bool` marks a code (I-TLB) protection.
    pub protects: Vec<(Asid, SecureRegion, bool)>,
    /// The recorded operation trace up to and including the violating op.
    pub ops: Vec<TraceOp>,
    /// The violation this capture reproduces.
    pub violation: OracleViolation,
}

/// A capture tagged with the campaign context ("driver|cell|…") that
/// produced it, as drained from the process-wide suspect sink.
#[derive(Debug, Clone)]
pub struct SuspectReport {
    /// The reporting context the driver installed via
    /// [`Machine::set_oracle_context`].
    pub context: String,
    /// The replayable capture.
    pub capture: TraceCapture,
}

/// The per-machine oracle state (the machine holds one when the oracle is
/// enabled). The checking logic lives in `machine.rs`, next to the state
/// it inspects.
#[derive(Debug)]
pub(crate) struct Oracle {
    pub(crate) setup: MachineSetup,
    pub(crate) context: Option<String>,
    pub(crate) ops: Vec<TraceOp>,
    pub(crate) exec_count: u64,
    pub(crate) planned: Option<PlannedCorruption>,
    pub(crate) protects: Vec<(Asid, SecureRegion, bool)>,
    pub(crate) violations: Vec<OracleViolation>,
    pub(crate) tainted: bool,
}

impl Oracle {
    pub(crate) fn new(setup: MachineSetup) -> Oracle {
        Oracle {
            setup,
            context: None,
            ops: Vec::new(),
            exec_count: 0,
            planned: None,
            protects: Vec::new(),
            violations: Vec::new(),
            tainted: false,
        }
    }
}

/// Process-wide sink of suspect reports. Campaign trials run on worker
/// threads whose return types cannot carry captures without breaking the
/// bitwise-deterministic result contract; the sink lets any machine
/// submit and the driver drain afterwards, keyed by context prefix.
static SINK: Mutex<Vec<SuspectReport>> = Mutex::new(Vec::new());

/// Bound on retained reports: one campaign can corrupt many cells, but
/// past a few the captures are redundant.
const SINK_CAP: usize = 256;

pub(crate) fn submit_suspect(report: SuspectReport) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if sink.len() < SINK_CAP {
        sink.push(report);
    }
}

/// Removes and returns every sunk report whose context starts with
/// `prefix` (drivers pass their own name so concurrent tests do not steal
/// each other's reports). Order of submission is preserved.
pub fn drain_suspects_with_prefix(prefix: &str) -> Vec<SuspectReport> {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::new();
    let mut i = 0;
    while i < sink.len() {
        if sink[i].context.starts_with(prefix) {
            out.push(sink.remove(i));
        } else {
            i += 1;
        }
    }
    out
}

fn build_from_setup(setup: &MachineSetup) -> Option<Machine> {
    let config = TlbConfig::sa(setup.entries, setup.ways).ok()?;
    let mut b = MachineBuilder::new()
        .design(setup.design)
        .tlb_config(config)
        .seed(setup.seed)
        .flush_policy(setup.flush_policy)
        .switch_cost(setup.switch_cost)
        .walker(WalkerConfig {
            cycles_per_level: setup.cycles_per_level,
        })
        .rf_eviction(setup.rf_eviction)
        .rf_invalidation(setup.rf_invalidation)
        .oracle(true);
    if let Some(w) = setup.sp_victim_ways {
        b = b.sp_victim_ways(w);
    }
    if let Some((design, entries, ways, latency)) = setup.l2 {
        b = b.l2(design, TlbConfig::sa(entries, ways).ok()?, latency);
    }
    if let Some((design, entries, ways)) = setup.itlb {
        b = b.itlb(design, TlbConfig::sa(entries, ways).ok()?);
    }
    Some(b.build())
}

/// Deterministically re-executes a capture with the oracle forced on and
/// returns the first violation it reproduces (`None` when the capture no
/// longer violates anything — e.g. after the shrinker dropped a
/// load-bearing op, or when the setup is not buildable).
pub fn replay(capture: &TraceCapture) -> Option<OracleViolation> {
    let mut m = build_from_setup(&capture.setup)?;
    for _ in 0..capture.processes {
        m.os_mut().create_process();
    }
    for &(asid, vpn, size) in &capture.maps {
        match size {
            PageSize::Base => m.os_mut().map_page(asid, vpn).ok()?,
            PageSize::Mega => m.os_mut().map_mega_page(asid, vpn).ok()?,
            PageSize::Giga => m.os_mut().map_giga_page(asid, vpn).ok()?,
        }
    }
    for &(asid, region, is_code) in &capture.protects {
        if is_code {
            m.protect_victim_code(asid, region).ok()?;
        } else {
            m.protect_victim(asid, region).ok()?;
        }
    }
    for op in &capture.ops {
        match *op {
            TraceOp::Exec(instr) => m.exec(instr),
            TraceOp::Corrupt { selector, kind } => {
                m.inject_corruption_now(selector, kind);
            }
        }
        if let Some(v) = m.oracle_violations().first() {
            return Some(v.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sectlb_tlb::types::Ppn;

    fn driven_machine(design: TlbDesign) -> Machine {
        let mut m = MachineBuilder::new().design(design).oracle(true).build();
        let v = m.os_mut().create_process();
        let a = m.os_mut().create_process();
        m.protect_victim(v, SecureRegion::new(Vpn(0x100), 3))
            .expect("victim exists");
        m.os_mut().map_region(v, Vpn(0x10), 8).expect("mappable");
        m.os_mut().map_region(a, Vpn(0x10), 8).expect("mappable");
        m
    }

    fn mixed_program(v: Asid, a: Asid) -> Vec<Instr> {
        let mut p = vec![Instr::SetAsid(v)];
        for i in 0..8u64 {
            p.push(Instr::Load((0x10 + i) << 12));
            p.push(Instr::Load(0x100_000 + (i % 3) * 0x1000));
        }
        p.push(Instr::FlushPage(0x12_000));
        p.push(Instr::SetAsid(a));
        for i in 0..8u64 {
            p.push(Instr::Store((0x10 + i) << 12));
        }
        p.push(Instr::FlushAsid(a));
        p.push(Instr::SetAsid(v));
        p.push(Instr::ReadMissCounter);
        p.push(Instr::FlushAll);
        p
    }

    #[test]
    fn clean_runs_raise_no_violations_on_any_design() {
        for design in TlbDesign::EXTENDED {
            let mut m = driven_machine(design);
            let program = mixed_program(Asid(1), Asid(2));
            m.run(&program);
            assert_eq!(
                m.oracle_violations(),
                &[],
                "{design} flagged a legitimate run"
            );
        }
    }

    #[test]
    fn ms_corruption_replays_across_page_size_classes() {
        // Exercises the multi-size machine under the oracle with all
        // three page sizes mapped, and the capture/replay path's mega and
        // giga arms.
        let giga_base = sectlb_tlb::types::PageSize::Giga.span_pages();
        for selector in [0u64, 3, 11] {
            let mut m = MachineBuilder::new()
                .design(TlbDesign::Ms)
                .oracle(true)
                .build();
            let p = m.os_mut().create_process();
            m.os_mut().map_region(p, Vpn(0x10), 4).expect("mappable");
            m.os_mut().map_mega_page(p, Vpn(0x1000)).expect("mappable");
            m.os_mut()
                .map_giga_page(p, Vpn(giga_base))
                .expect("mappable");
            m.set_oracle_context(format!("shadow-ms-{selector}|cell"));
            m.run(&[
                Instr::SetAsid(p),
                Instr::Load(0x10_000),
                Instr::Load(0x1000 << 12),
                Instr::Load(giga_base << 12),
            ]);
            assert_eq!(m.oracle_violations(), &[], "clean multi-size run");
            assert!(m.inject_corruption_now(selector, CorruptionKind::Ppn));
            let reports = drain_suspects_with_prefix(&format!("shadow-ms-{selector}"));
            assert_eq!(reports.len(), 1, "selector {selector}");
            let capture = &reports[0].capture;
            assert_eq!(replay(capture), Some(capture.violation.clone()));
        }
    }

    #[test]
    fn temporal_designs_clear_on_switch_under_oracle() {
        // A real switch on FS/FT empties the TLB and satisfies the
        // ClearCompleteness check.
        for design in [TlbDesign::Fs, TlbDesign::Ft] {
            let mut m = driven_machine(design);
            m.run(&[Instr::SetAsid(Asid(1)), Instr::Load(0x10_000)]);
            assert!(m.tlb().probe(Asid(1), Vpn(0x10)));
            m.exec(Instr::SetAsid(Asid(2)));
            assert_eq!(m.oracle_violations(), &[], "{design}: clean switch");
            assert!(
                !m.tlb().probe(Asid(1), Vpn(0x10)),
                "{design}: the switch cleared the entry"
            );
        }
    }

    #[test]
    fn corruption_is_detected_and_replayable() {
        for kind in CorruptionKind::ALL {
            let mut m = driven_machine(TlbDesign::Sa);
            m.set_oracle_context(format!("shadow-test-{kind}|cell"));
            m.run(&[Instr::SetAsid(Asid(1)), Instr::Load(0x10_000)]);
            assert!(m.inject_corruption_now(7, kind), "entry was resident");
            let violations = m.oracle_violations();
            assert_eq!(violations.len(), 1, "kind {kind}: {violations:?}");
            let reports = drain_suspects_with_prefix(&format!("shadow-test-{kind}"));
            assert_eq!(reports.len(), 1);
            let capture = &reports[0].capture;
            assert!(matches!(capture.ops.last(), Some(TraceOp::Corrupt { .. })));
            let replayed = replay(capture).expect("replay reproduces");
            assert_eq!(replayed, capture.violation, "kind {kind}");
        }
    }

    #[test]
    fn corruption_on_empty_tlb_reports_nothing() {
        let mut m = driven_machine(TlbDesign::Sa);
        assert!(!m.inject_corruption_now(0, CorruptionKind::Ppn));
        assert_eq!(m.oracle_violations(), &[]);
    }

    #[test]
    fn scheduled_corruption_fires_at_the_requested_op() {
        let mut m = driven_machine(TlbDesign::Rf);
        m.set_oracle_context("shadow-sched|cell");
        assert!(m.schedule_corruption(3, 11, CorruptionKind::Ppn));
        let program = mixed_program(Asid(1), Asid(2));
        m.run(&program);
        assert_eq!(m.oracle_violations().len(), 1);
        let reports = drain_suspects_with_prefix("shadow-sched");
        assert_eq!(reports.len(), 1);
        let capture = &reports[0].capture;
        let corrupt_at = capture
            .ops
            .iter()
            .position(|op| matches!(op, TraceOp::Corrupt { .. }))
            .expect("trace records the injection");
        assert!(corrupt_at >= 3, "fires only once 3 instructions ran");
        assert_eq!(replay(capture), Some(capture.violation.clone()));
    }

    #[test]
    fn direct_register_fiddling_taints_the_oracle() {
        let mut m = driven_machine(TlbDesign::Rf);
        m.set_oracle_context("shadow-taint|cell");
        m.tlb_mut().set_victim_asid(Some(Asid(9)));
        m.run(&[Instr::SetAsid(Asid(1)), Instr::Load(0x100_000)]);
        assert!(!m.inject_corruption_now(0, CorruptionKind::Ppn));
        assert_eq!(m.oracle_violations(), &[]);
        assert!(drain_suspects_with_prefix("shadow-taint").is_empty());
    }

    #[test]
    fn replay_is_deterministic_about_frame_assignment() {
        // The determinism contract the whole repro pipeline rests on: the
        // capture records no PPNs, yet replay must regenerate the same
        // address-space image. Compare a run's page tables against its
        // replayed capture via a corruption-triggered capture.
        let mut m = driven_machine(TlbDesign::Sa);
        m.set_oracle_context("shadow-frames|cell");
        let mut program = mixed_program(Asid(1), Asid(2));
        program.pop(); // keep the trailing FlushAll from emptying the TLB
        m.run(&program);
        assert!(m.inject_corruption_now(0, CorruptionKind::Ppn));
        let reports = drain_suspects_with_prefix("shadow-frames");
        let capture = &reports[0].capture;
        // Replaying twice yields the identical violation (including the
        // PPNs embedded in its expected/actual strings).
        assert_eq!(replay(capture), replay(capture));
        assert_eq!(replay(capture), Some(capture.violation.clone()));
    }

    #[test]
    fn hierarchy_and_itlb_machines_stay_clean_under_oracle() {
        let mut m = MachineBuilder::new()
            .design(TlbDesign::Rf)
            .l2(TlbDesign::Sa, TlbConfig::sa(64, 4).expect("valid"), 8)
            .itlb(TlbDesign::Sa, TlbConfig::sa(8, 4).expect("valid"))
            .oracle(true)
            .build();
        let v = m.os_mut().create_process();
        m.protect_victim(v, SecureRegion::new(Vpn(0x100), 3))
            .expect("victim exists");
        m.os_mut().map_region(v, Vpn(0x10), 4).expect("mappable");
        m.os_mut().map_region(v, Vpn(0x500), 2).expect("mappable");
        m.run(&[Instr::SetAsid(v), Instr::JumpTo(0x500_000)]);
        for i in 0..6u64 {
            m.exec(Instr::Load((0x10 + (i % 4)) << 12));
            m.exec(Instr::Load(0x100_000 + (i % 3) * 0x1000));
        }
        m.run(&[Instr::FlushAll]);
        assert_eq!(m.oracle_violations(), &[]);
    }

    #[test]
    fn invariant_names_roundtrip() {
        for i in Invariant::ALL {
            assert_eq!(Invariant::from_name(i.name()), Some(i));
        }
        assert_eq!(Invariant::from_name("nonsense"), None);
    }

    #[test]
    fn violation_display_is_structured() {
        let v = OracleViolation {
            design: "SA".into(),
            op_index: 4,
            invariant: Invariant::Translation,
            expected: "ppn:0x5".into(),
            actual: "ppn:0x6".into(),
        };
        let s = v.to_string();
        assert!(s.contains("[SA] op 4"), "{s}");
        assert!(s.contains("translation"), "{s}");
        let _ = Ppn(0); // keep the import exercised alongside Display
    }
}
