//! The trace-driven CPU core and its performance counters.
//!
//! The paper's evaluation (Section 6.2) enables cycle and instruction
//! counters in user mode and adds a TLB-miss counter; the collected
//! metrics are instructions per cycle (IPC) and TLB misses per kilo
//! instruction (MPKI). Our core executes an explicit instruction stream —
//! memory operations identified by virtual address (the ASID comes from a
//! `process_id` register, as in the Figure 6 benchmarks), compute bursts,
//! CSR reads of the miss counter, and TLB maintenance operations.

use sectlb_tlb::types::Asid;

/// One instruction of the trace-driven core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Load from a virtual address (triggers translation).
    Load(u64),
    /// Store to a virtual address (triggers translation).
    Store(u64),
    /// A burst of `n` compute (non-memory) instructions, costing one cycle
    /// each.
    Compute(u64),
    /// Write the `process_id` CSR: switch the executing address space.
    /// Under [`crate::FlushPolicy::FlushOnSwitch`] this also flushes the
    /// TLB.
    SetAsid(Asid),
    /// Whole-TLB flush (`sfence.vma`-style supervisor flush).
    FlushAll,
    /// Flush one address space's entries.
    FlushAsid(Asid),
    /// Targeted invalidation of the page containing the virtual address
    /// (the `mprotect()`-induced shootdown of Appendix B). Takes an extra
    /// cycle when the entry was present — the Flush + Flush timing
    /// channel.
    FlushPage(u64),
    /// Read the TLB-miss performance counter (`csrr tlb_miss_count` in
    /// Figure 6); the value is appended to
    /// [`ExecStats::counter_reads`].
    ReadMissCounter,
    /// Transfer control to code at a virtual address: subsequent
    /// instruction fetches come from that page. Only meaningful when the
    /// machine is configured with an instruction TLB; a no-op otherwise.
    JumpTo(u64),
}

/// Accumulated CPU counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instret: u64,
    /// Executed loads.
    pub loads: u64,
    /// Executed stores.
    pub stores: u64,
    /// Translation faults encountered.
    pub faults: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Values captured by [`Instr::ReadMissCounter`], in program order.
    pub counter_reads: Vec<u64>,
}

impl ExecStats {
    /// Fresh counters.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Instructions per cycle; `None` before any cycle elapsed.
    pub fn ipc(&self) -> Option<f64> {
        (self.cycles > 0).then(|| self.instret as f64 / self.cycles as f64)
    }

    /// Misses per kilo instruction, given the TLB's miss counter.
    pub fn mpki(&self, tlb_misses: u64) -> Option<f64> {
        (self.instret > 0).then(|| tlb_misses as f64 * 1000.0 / self.instret as f64)
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = ExecStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mpki_handle_zero_denominators() {
        let s = ExecStats::new();
        assert_eq!(s.ipc(), None);
        assert_eq!(s.mpki(5), None);
    }

    #[test]
    fn metrics_compute_from_counters() {
        let s = ExecStats {
            cycles: 2000,
            instret: 1000,
            ..ExecStats::default()
        };
        assert_eq!(s.ipc(), Some(0.5));
        assert_eq!(s.mpki(30), Some(30.0));
    }
}
