//! Async-signal-safe SIGINT/SIGTERM latch for the campaign supervisor.
//!
//! The campaign engine wants *graceful* shutdown: the first SIGINT or
//! SIGTERM should stop the run at the next shard boundary (drain, flush a
//! checkpoint, render a partial report), and a second signal should kill
//! the process immediately — the operator's escape hatch when the drain
//! itself hangs.
//!
//! The build environment has no crates.io access, so this crate talks to
//! libc directly with two `extern "C"` declarations instead of pulling in
//! `libc`/`signal-hook`. The handler does only async-signal-safe work: an
//! atomic increment, and `_exit` on the second delivery.
//!
//! Everything is process-global by design — signals are process-global —
//! and the latch can also be tripped in-process ([`trip`]) so tests can
//! exercise the exact drain path a real signal takes without involving
//! the kernel.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// Number of graceful-shutdown signals received (or [`trip`]s).
static RECEIVED: AtomicUsize = AtomicUsize::new(0);

/// Exit status used when a *second* signal forces an immediate exit:
/// the conventional `128 + signo` of a signal death.
fn hard_exit_code(signo: i32) -> i32 {
    128 + signo
}

#[cfg(unix)]
mod imp {
    use super::{hard_exit_code, RECEIVED};
    use std::sync::atomic::Ordering;

    /// `SIGINT` on every Unix this builds on.
    pub const SIGINT: i32 = 2;
    /// `SIGTERM` on every Unix this builds on.
    pub const SIGTERM: i32 = 15;

    extern "C" {
        // ISO C `signal`: simple-semantics handler installation is all we
        // need for a latch (no siginfo, no masks), and its prototype is
        // identical across the Unixes this project targets.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        // Async-signal-safe immediate exit (no atexit handlers, no
        // buffered-IO flushing — this is the "get out NOW" path).
        fn _exit(status: i32) -> !;
    }

    extern "C" fn on_signal(signo: i32) {
        // fetch_add on a static atomic is async-signal-safe.
        let prior = RECEIVED.fetch_add(1, Ordering::SeqCst);
        if prior >= 1 {
            // Second signal: the graceful drain did not finish (or the
            // operator is insisting). Die immediately.
            unsafe { _exit(hard_exit_code(signo)) }
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// On non-Unix targets the latch still works via [`super::trip`];
    /// real signal delivery is simply not hooked.
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent; the first call
/// wins). After this, the first signal latches [`received`] and the
/// second exits the process immediately with status `128 + signo`.
pub fn install() {
    static ONCE: Once = Once::new();
    ONCE.call_once(imp::install);
}

/// Whether at least one graceful-shutdown signal has been received.
pub fn received() -> bool {
    RECEIVED.load(Ordering::SeqCst) > 0
}

/// Trips the latch as if a signal had been delivered — lets tests drive
/// the exact drain path of a real SIGINT/SIGTERM without the kernel.
pub fn trip() {
    RECEIVED.fetch_add(1, Ordering::SeqCst);
}

/// Clears the latch. Test-only in spirit: a real campaign never unlatches
/// (a signalled operator wants the run to end), but tests run many
/// campaigns in one process.
pub fn reset() {
    RECEIVED.store(0, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_trips_and_resets() {
        reset();
        assert!(!received());
        trip();
        assert!(received());
        reset();
        assert!(!received());
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}
