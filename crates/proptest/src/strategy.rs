//! Strategies: deterministic samplers for property inputs.

use std::collections::hash_map::DefaultHasher;
use std::fmt::Debug;
use std::hash::{Hash, Hasher};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SampleUniform, SeedableRng};

/// The RNG handed to strategies. Concrete (not generic) so strategies can
/// be boxed into trait objects.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Deterministic RNG for a named test: the same test name always
    /// replays the same case sequence.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng {
            rng: SmallRng::seed_from_u64(h.finish()),
        }
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform sample from an integer range.
    pub fn sample<T: SampleUniform, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.rng.gen_range(range)
    }
}

/// A sampler of values of one type (upstream proptest's core trait, minus
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    T: SampleUniform + Debug + Clone + 'static,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.sample(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: SampleUniform + Debug + Clone + 'static,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.sample(self.clone())
    }
}

macro_rules! impl_range_from {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_from!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s),+> Strategy for ($($s,)+)
        where
            $($s: Strategy),+
        {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);

/// A weighted choice among strategies with a common value type (what
/// `prop_oneof!` builds).
pub struct WeightedUnion<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V: Debug> WeightedUnion<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> WeightedUnion<V> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: all weights are zero");
        WeightedUnion { arms, total }
    }
}

impl<V: Debug> Strategy for WeightedUnion<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut ticket = rng.sample(0..self.total);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if ticket < weight {
                return strat.generate(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket exceeds total weight")
    }
}

/// Types with a canonical whole-domain strategy (mirrors
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized + Debug {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.sample(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias toward the characters serializers must treat specially —
        // quotes, backslashes, control characters — alongside plain ASCII
        // and arbitrary unicode scalars.
        match rng.below(8) {
            0 => '"',
            1 => '\\',
            2 => char::from_u32(rng.sample(0u32..0x20)).expect("controls are scalars"),
            3..=5 => char::from(rng.sample(0x20u8..0x7f)),
            _ => loop {
                if let Some(c) = char::from_u32(rng.sample(0u32..=0x0010_FFFF)) {
                    break c;
                }
            },
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(12);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

/// The whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
