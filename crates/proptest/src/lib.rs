//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest the workspace uses: integer-range, tuple,
//! mapped, weighted-union, and collection strategies, `any::<T>()`, and
//! the `proptest!` / `prop_assert!` / `prop_oneof!` macros.
//!
//! Differences from upstream, by design:
//!
//! - sampling is **deterministic**: the RNG is seeded from the test name,
//!   so a failure reproduces on every run (no regression files needed —
//!   `*.proptest-regressions` files are ignored);
//! - there is **no shrinking**: a failing case reports the exact inputs
//!   that failed instead of a minimized counterexample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Size argument accepted by [`vec`]: an exact size or a half-open
    /// range of sizes.
    pub trait IntoSizeRange {
        /// Lower bound (inclusive) and upper bound (exclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`, with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "collection::vec: empty size range");
        VecStrategy { element, lo, hi }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.hi - self.lo) + self.lo;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a proptest-using module needs (mirrors
/// `proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Per-test configuration (mirrors the upstream struct of the same
    /// name; only `cases` is interpreted).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a regular test that evaluates its body over `cases`
/// deterministically sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::prelude::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::prelude::ProptestConfig = $cfg;
            let mut rng = $crate::strategy::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(cause) = outcome {
                    eprintln!(
                        "proptest {}: case #{case} failed with inputs: {inputs}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tri {
        A(u8),
        B,
        C,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4, z in 1u128..) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(z >= 1);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u8..4, 10u64..20).prop_map(|(a, b)| (b, a)),
            v in crate::collection::vec(0u8..3, 1..9),
        ) {
            prop_assert!(pair.0 >= 10 && pair.1 < 4);
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn oneof_honors_arms(t in prop_oneof![
            2 => (0u8..7).prop_map(Tri::A),
            1 => Just(Tri::B),
            1 => Just(Tri::C),
        ]) {
            match t {
                Tri::A(x) => prop_assert!(x < 7),
                Tri::B | Tri::C => {}
            }
        }

        #[test]
        fn any_covers_integers(x in any::<u128>(), b in any::<bool>()) {
            let _ = (x, b);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let sample = |name: &str| {
            let mut rng = TestRng::for_test(name);
            (0..8)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample("alpha"), sample("alpha"));
        assert_ne!(sample("alpha"), sample("beta"));
    }

    #[test]
    fn oneof_reaches_every_arm() {
        let strat = prop_oneof![
            6 => Just(Tri::B),
            1 => Just(Tri::C),
            1 => (0u8..2).prop_map(Tri::A),
        ];
        let mut rng = TestRng::for_test("arms");
        let draws: Vec<Tri> = (0..400).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.contains(&Tri::B));
        assert!(draws.contains(&Tri::C));
        assert!(draws.iter().any(|t| matches!(t, Tri::A(_))));
        let b = draws.iter().filter(|&&t| t == Tri::B).count();
        assert!(b > 200, "weight-6 arm drew only {b} of 400");
    }
}
