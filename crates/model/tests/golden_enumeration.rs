//! Golden test pinning the vulnerability enumeration.
//!
//! The parallel trial engine derives every trial seed from the
//! vulnerability's position in the Table 1 state space, so campaign
//! reproducibility depends on this enumeration never drifting: neither
//! the raw three-step pattern space nor the 24 derived rows (including
//! their order) may change silently. The rows below are transcribed
//! literals, not calls back into the library — editing `enumerate.rs` in
//! a way that reorders or reclassifies any row must fail here.

use std::collections::BTreeSet;

use sectlb_model::enumerate::structural_candidate_count;
use sectlb_model::enumerate_vulnerabilities;
use sectlb_model::pattern::Pattern;
use sectlb_model::state::State;

/// Table 2 in print order, formatted as `pattern (timing) [macro] strategy`.
const GOLDEN_TABLE2: [&str; 24] = [
    "A_inv ~> V_u ~> V_a (fast) [IH] TLB Internal Collision",
    "V_inv ~> V_u ~> V_a (fast) [IH] TLB Internal Collision",
    "A_d ~> V_u ~> V_a (fast) [IH] TLB Internal Collision",
    "V_d ~> V_u ~> V_a (fast) [IH] TLB Internal Collision",
    "A_aalias ~> V_u ~> V_a (fast) [IH] TLB Internal Collision",
    "V_aalias ~> V_u ~> V_a (fast) [IH] TLB Internal Collision",
    "A_inv ~> V_u ~> A_a (fast) [EH] TLB Flush + Reload",
    "V_inv ~> V_u ~> A_a (fast) [EH] TLB Flush + Reload",
    "A_d ~> V_u ~> A_a (fast) [EH] TLB Flush + Reload",
    "V_d ~> V_u ~> A_a (fast) [EH] TLB Flush + Reload",
    "A_aalias ~> V_u ~> A_a (fast) [EH] TLB Flush + Reload",
    "V_aalias ~> V_u ~> A_a (fast) [EH] TLB Flush + Reload",
    "V_u ~> A_d ~> V_u (slow) [EM] TLB Evict + Time",
    "V_u ~> A_a ~> V_u (slow) [EM] TLB Evict + Time",
    "A_d ~> V_u ~> A_d (slow) [EM] TLB Prime + Probe",
    "A_a ~> V_u ~> A_a (slow) [EM] TLB Prime + Probe",
    "V_u ~> V_a ~> V_u (slow) [IM] TLB version of Bernstein's Attack",
    "V_u ~> V_d ~> V_u (slow) [IM] TLB version of Bernstein's Attack",
    "V_d ~> V_u ~> V_d (slow) [IM] TLB version of Bernstein's Attack",
    "V_a ~> V_u ~> V_a (slow) [IM] TLB version of Bernstein's Attack",
    "V_d ~> V_u ~> A_d (slow) [EM] TLB Evict + Probe",
    "V_a ~> V_u ~> A_a (slow) [EM] TLB Evict + Probe",
    "A_d ~> V_u ~> V_d (slow) [IM] TLB Prime + Time",
    "A_a ~> V_u ~> V_a (slow) [IM] TLB Prime + Time",
];

#[test]
fn derived_rows_match_the_golden_table_in_order() {
    let derived: Vec<String> = enumerate_vulnerabilities()
        .iter()
        .map(|v| v.to_string())
        .collect();
    assert_eq!(derived.len(), 24, "Table 2 has exactly 24 rows");
    for (i, (got, want)) in derived.iter().zip(GOLDEN_TABLE2).enumerate() {
        assert_eq!(got, want, "row {i} drifted");
    }
}

#[test]
fn raw_three_step_space_has_exactly_1000_patterns() {
    assert_eq!(State::ALL.len(), 10, "Table 1 defines 10 base states");
    let mut raw = 0usize;
    let mut distinct = BTreeSet::new();
    for s1 in State::ALL {
        for s2 in State::ALL {
            for s3 in State::ALL {
                raw += 1;
                distinct.insert(Pattern::new(s1, s2, s3));
            }
        }
    }
    assert_eq!(raw, 1000, "10 x 10 x 10 three-step combinations");
    assert_eq!(distinct.len(), 1000, "all raw patterns are distinct");
}

#[test]
fn structural_pruning_keeps_36_of_1000_candidates() {
    // The intermediate candidate set between the structural rules and the
    // semantic rule-(7) analysis; pinned so rule edits are deliberate.
    assert_eq!(structural_candidate_count(), 36);
}
