//! Appendix A: reduction of β-step patterns (β > 3) to three-step
//! vulnerabilities.
//!
//! The paper's Algorithm 1 shows that the three-step model is sound: any
//! longer pattern of memory-page-related operations either reduces to one
//! or more effective three-step vulnerabilities, or is ineffective. The
//! four rules are:
//!
//! 1. a `★` anywhere but the first step splits the pattern (the attacker
//!    loses track of the block), with the `★` becoming step 1 of the
//!    second half; a trailing `★` is deleted;
//! 2. likewise for whole-TLB invalidations `A_inv`/`V_inv`;
//! 3. two adjacent steps that are both `u`-operations, or both
//!    non-`u`-operations, collapse into the later one;
//! 4. the remaining alternating pattern is scanned for effective
//!    three-step sub-patterns using the Table 2 derivation.

use crate::enumerate::{analyze, Vulnerability};
use crate::pattern::Pattern;
use crate::state::State;

/// Splits `steps` before every state matched by `is_boundary` (except at
/// index 0); the boundary state becomes the first step of the next
/// segment. Trailing boundary states are deleted (rules 1 and 2).
fn split_at_boundaries(steps: &[State], is_boundary: impl Fn(State) -> bool) -> Vec<Vec<State>> {
    let mut segments: Vec<Vec<State>> = Vec::new();
    let mut current: Vec<State> = Vec::new();
    for &s in steps {
        if is_boundary(s) && !current.is_empty() {
            segments.push(std::mem::take(&mut current));
        }
        current.push(s);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    // A boundary can only be the first step of its segment; a segment that
    // is *just* a boundary is a deleted trailing ★/inv ("★ in the last
    // step will be deleted").
    segments.retain(|seg| !(seg.len() == 1 && is_boundary(seg[0])));
    segments
}

/// Rule 3: collapses runs of adjacent same-class steps, keeping the later
/// one (the later operation determines the final block state).
fn collapse_adjacent(steps: &[State]) -> Vec<State> {
    let mut out: Vec<State> = Vec::new();
    for &s in steps {
        if let Some(&last) = out.last() {
            let same_class = last.involves_u() == s.involves_u();
            if same_class {
                out.pop();
            }
        }
        out.push(s);
    }
    out
}

/// Reduces a β-step pattern to the effective three-step vulnerabilities it
/// contains (Algorithm 1 of Appendix A).
///
/// Returns an empty vector when the pattern is not effective. Patterns of
/// fewer than three steps are padded with a leading `★` (the paper
/// represents two-step attacks as `★ ⇝ …`).
///
/// ```
/// use sectlb_model::reduce::reduce_pattern;
/// use sectlb_model::state::{Actor, State};
///
/// // A five-step pattern containing a Prime + Probe window.
/// let a = Actor::Attacker;
/// let steps = [
///     State::KnownD(a),
///     State::KnownD(a), // redundant re-prime: collapsed by rule 3
///     State::Vu,
///     State::KnownD(a),
///     State::Vu,
/// ];
/// let found = reduce_pattern(&steps);
/// assert!(!found.is_empty());
/// ```
pub fn reduce_pattern(steps: &[State]) -> Vec<Vulnerability> {
    let mut found: Vec<Vulnerability> = Vec::new();
    // Rules 1 and 2: split at ★ and at whole-TLB invalidations.
    for seg in split_at_boundaries(steps, |s| s == State::Star) {
        for seg in split_at_boundaries(&seg, State::is_inv) {
            scan_segment(&seg, &mut found);
        }
    }
    found.sort_by_key(|v| v.pattern);
    found.dedup();
    found
}

fn scan_segment(seg: &[State], found: &mut Vec<Vulnerability>) {
    let collapsed = collapse_adjacent(seg);
    match collapsed.len() {
        0 | 1 => {}
        2 => {
            // Two-step attacks are modeled as ★ ⇝ s1 ⇝ s2.
            if let Some(v) = analyze(Pattern::new(State::Star, collapsed[0], collapsed[1])) {
                found.push(v);
            }
        }
        _ => {
            // Rule 4: scan every three-step window of the alternating
            // pattern for an effective vulnerability.
            for w in collapsed.windows(3) {
                if let Some(v) = analyze(Pattern::new(w[0], w[1], w[2])) {
                    found.push(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Actor::{Attacker as A, Victim as V};
    use crate::state::State::*;
    use crate::strategy::Strategy;

    #[test]
    fn three_step_vulnerability_reduces_to_itself() {
        let steps = [KnownD(A), Vu, KnownD(A)];
        let found = reduce_pattern(&steps);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].pattern, Pattern::new(KnownD(A), Vu, KnownD(A)));
        assert_eq!(found[0].strategy, Strategy::PrimeProbe);
    }

    #[test]
    fn adjacent_known_steps_collapse_to_the_later_one() {
        // The paper's rule-3 example: { … A_d ~> V_a … } reduces to { … V_a … }.
        let steps = [KnownD(A), KnownA(V), Vu, KnownA(V)];
        let found = reduce_pattern(&steps);
        assert_eq!(found.len(), 1);
        // After collapsing, the window is V_a ~> V_u ~> V_a (Bernstein).
        assert_eq!(found[0].strategy, Strategy::Bernstein);
    }

    #[test]
    fn adjacent_u_steps_collapse() {
        let steps = [KnownD(A), Vu, Vu, KnownD(A)];
        let found = reduce_pattern(&steps);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].strategy, Strategy::PrimeProbe);
    }

    #[test]
    fn star_in_the_middle_splits_the_pattern() {
        // Prime + Probe, then noise, then Internal Collision: both found.
        let steps = [KnownD(A), Vu, KnownD(A), Star, KnownD(V), Vu, KnownA(V)];
        let found = reduce_pattern(&steps);
        let strategies: Vec<_> = found.iter().map(|v| v.strategy).collect();
        assert!(strategies.contains(&Strategy::PrimeProbe));
        assert!(strategies.contains(&Strategy::InternalCollision));
    }

    #[test]
    fn invalidation_in_the_middle_becomes_step_one_of_second_pattern() {
        // The flush serves as step 1 of an Internal Collision.
        let steps = [KnownD(A), Vu, KnownD(A), Inv(A), Vu, KnownA(V)];
        let found = reduce_pattern(&steps);
        let patterns: Vec<_> = found.iter().map(|v| v.pattern).collect();
        assert!(patterns.contains(&Pattern::new(Inv(A), Vu, KnownA(V))));
    }

    #[test]
    fn ineffective_long_pattern_reduces_to_nothing() {
        // Known-only operations leak nothing (rule 2 of Section 3.3).
        let steps = [KnownD(A), KnownA(A), KnownD(V), KnownA(V), KnownD(A)];
        assert!(reduce_pattern(&steps).is_empty());
    }

    #[test]
    fn one_step_patterns_are_never_effective() {
        // β = 1 cannot create interference (Appendix A).
        for s in State::ALL {
            assert!(reduce_pattern(&[s]).is_empty(), "{s}");
        }
    }

    #[test]
    fn two_step_patterns_are_never_effective() {
        // β = 2 corresponds to ★-prefixed three-step patterns, none of
        // which are in Table 2 (Appendix A).
        for s1 in State::ALL {
            for s2 in State::ALL {
                if s1.involves_u() == s2.involves_u() {
                    continue; // collapsed by rule 3 anyway
                }
                assert!(reduce_pattern(&[s1, s2]).is_empty(), "{s1} ~> {s2}");
            }
        }
    }

    #[test]
    fn found_vulnerabilities_are_always_table2_rows() {
        use crate::enumerate::enumerate_vulnerabilities;
        let table: Vec<_> = enumerate_vulnerabilities();
        // A pseudo-random-ish long pattern; every reported vulnerability
        // must be one of the 24 canonical rows.
        let steps = [
            KnownD(A),
            Vu,
            KnownD(A),
            Vu,
            KnownA(A),
            Vu,
            Star,
            KnownD(V),
            Vu,
            KnownA(V),
            Inv(V),
            Vu,
            KnownA(A),
        ];
        let found = reduce_pattern(&steps);
        assert!(!found.is_empty());
        for v in found {
            assert!(table.contains(&v), "{v} is not a Table 2 row");
        }
    }
}
