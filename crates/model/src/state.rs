//! The possible states of a single TLB block (Table 1 of the paper).
//!
//! Each step of a three-step pattern places the modeled TLB block in one of
//! ten states. A state records *which address class* occupies (or vacated)
//! the block and *which party* caused it. All addresses other than the
//! victim's secret address `u` are known to the attacker.

use std::fmt;

/// The party performing a memory operation.
///
/// In a side-channel scenario the victim is an unwitting process; in a
/// covert-channel scenario the "victim" is the sender. The model treats both
/// identically (Section 3.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Actor {
    /// The attacker (or covert-channel receiver), denoted `A`.
    Attacker,
    /// The victim (or covert-channel sender), denoted `V`.
    Victim,
}

impl Actor {
    /// The single-letter prefix used in the paper's notation (`A` or `V`).
    pub fn letter(self) -> char {
        match self {
            Actor::Attacker => 'A',
            Actor::Victim => 'V',
        }
    }
}

impl fmt::Display for Actor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Actor::Attacker => "attacker",
            Actor::Victim => "victim",
        })
    }
}

/// One of the ten states of a TLB block from Table 1 of the paper.
///
/// The address classes are defined relative to the victim's security
/// critical memory range `x` and the block under test:
///
/// - `u` — the victim's secret address; within `x`, unknown to the attacker.
/// - `a` — a known address within `x`; may or may not equal `u`.
/// - `a_alias` — a known address within `x`, different page from `a` but
///   with the same page index (maps to the same TLB block).
/// - `d` — a known address outside `x` (but mapping to the tested block, as
///   block states by definition concern the tested block).
/// - *inv* — the block was invalidated (the base model permits only
///   whole-TLB flushes; see [`crate::extended`] for targeted invalidation).
/// - `★` — unknown contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum State {
    /// `V_u`: the block holds the victim's secret translation `u`.
    Vu,
    /// `A_a` / `V_a`: the block holds the known in-range address `a`.
    KnownA(Actor),
    /// `A_a_alias` / `V_a_alias`: the block holds the alias of `a`.
    KnownAlias(Actor),
    /// `A_inv` / `V_inv`: the block was invalidated by a whole-TLB flush.
    Inv(Actor),
    /// `A_d` / `V_d`: the block holds the known out-of-range address `d`.
    KnownD(Actor),
    /// `★`: unknown contents; the attacker has no knowledge of the block.
    Star,
}

impl State {
    /// All ten states, in the order used for exhaustive enumeration.
    pub const ALL: [State; 10] = [
        State::Vu,
        State::KnownA(Actor::Attacker),
        State::KnownA(Actor::Victim),
        State::KnownAlias(Actor::Attacker),
        State::KnownAlias(Actor::Victim),
        State::Inv(Actor::Attacker),
        State::Inv(Actor::Victim),
        State::KnownD(Actor::Attacker),
        State::KnownD(Actor::Victim),
        State::Star,
    ];

    /// The actor that performed the operation, if the state names one.
    ///
    /// `V_u` is always a victim operation; `★` names no actor.
    pub fn actor(self) -> Option<Actor> {
        match self {
            State::Vu => Some(Actor::Victim),
            State::KnownA(x) | State::KnownAlias(x) | State::Inv(x) | State::KnownD(x) => Some(x),
            State::Star => None,
        }
    }

    /// Whether the resulting block contents are known to the attacker.
    ///
    /// Everything except `V_u` (secret address) and `★` (no knowledge) is
    /// known: the attacker knows `a`, `a_alias`, `d`, and knows that a flush
    /// leaves the block invalid.
    pub fn known_to_attacker(self) -> bool {
        !matches!(self, State::Vu | State::Star)
    }

    /// Whether this state involves the victim's secret address `u`.
    pub fn involves_u(self) -> bool {
        matches!(self, State::Vu)
    }

    /// Whether this is a whole-TLB invalidation state.
    pub fn is_inv(self) -> bool {
        matches!(self, State::Inv(_))
    }

    /// Whether this state references the alias address `a_alias`.
    pub fn is_alias(self) -> bool {
        matches!(self, State::KnownAlias(_))
    }

    /// Exchanges the roles of `a` and `a_alias` (used by the rule-5 alias
    /// deduplication of Section 3.3).
    pub fn swap_alias(self) -> State {
        match self {
            State::KnownA(x) => State::KnownAlias(x),
            State::KnownAlias(x) => State::KnownA(x),
            other => other,
        }
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            State::Vu => f.write_str("V_u"),
            State::KnownA(x) => write!(f, "{}_a", x.letter()),
            State::KnownAlias(x) => write!(f, "{}_aalias", x.letter()),
            State::Inv(x) => write!(f, "{}_inv", x.letter()),
            State::KnownD(x) => write!(f, "{}_d", x.letter()),
            State::Star => f.write_str("*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_ten_states() {
        // Table 1 of the paper lists ten possible states.
        assert_eq!(State::ALL.len(), 10);
        let mut unique: Vec<State> = State::ALL.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn vu_is_a_victim_operation() {
        assert_eq!(State::Vu.actor(), Some(Actor::Victim));
        assert!(State::Vu.involves_u());
        assert!(!State::Vu.known_to_attacker());
    }

    #[test]
    fn star_names_no_actor_and_is_unknown() {
        assert_eq!(State::Star.actor(), None);
        assert!(!State::Star.known_to_attacker());
    }

    #[test]
    fn known_states_are_known_regardless_of_actor() {
        for actor in [Actor::Attacker, Actor::Victim] {
            assert!(State::KnownA(actor).known_to_attacker());
            assert!(State::KnownAlias(actor).known_to_attacker());
            assert!(State::Inv(actor).known_to_attacker());
            assert!(State::KnownD(actor).known_to_attacker());
        }
    }

    #[test]
    fn swap_alias_is_an_involution() {
        for s in State::ALL {
            assert_eq!(s.swap_alias().swap_alias(), s);
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(State::Vu.to_string(), "V_u");
        assert_eq!(State::KnownA(Actor::Attacker).to_string(), "A_a");
        assert_eq!(State::KnownAlias(Actor::Victim).to_string(), "V_aalias");
        assert_eq!(State::Inv(Actor::Attacker).to_string(), "A_inv");
        assert_eq!(State::KnownD(Actor::Victim).to_string(), "V_d");
        assert_eq!(State::Star.to_string(), "*");
    }
}
