//! Symbolic single-block TLB semantics.
//!
//! This module implements the information analysis behind rule (7) of
//! Section 3.3: *"if measured timing corresponds to more than one possible
//! sensitive address translation of the victim, the corresponding
//! vulnerability is removed."*
//!
//! The paper reasons about a single TLB block. We track its contents
//! symbolically and evaluate a candidate pattern under the four atomic
//! relationships the secret address `u` can have to the tested block:
//!
//! 1. `u == a` — `u` is exactly the known in-range address `a`;
//! 2. `u == a_alias` — `u` is exactly the alias of `a`;
//! 3. *same index* — `u` maps to the tested block but is a different page;
//! 4. *elsewhere* — `u` maps to a different TLB block entirely.
//!
//! A pattern is an effective vulnerability precisely when the step-3 timing
//! is deterministic in each case and the induced partition of the four
//! cases lets the attacker certify either an address match (hit-based) or
//! an index match (miss-based). See [`crate::enumerate`] for the
//! classification.
//!
//! When `u` maps elsewhere, accesses to `u` still hit or miss in `u`'s own
//! block; the evaluator tracks whether `u` is cached there so that
//! final-step `V_u` observations (e.g. Evict + Time) are modeled correctly.

use crate::pattern::Timing;
use crate::state::Actor;

/// The relationship of the victim's secret address `u` to the tested block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UCase {
    /// `u` is the known address `a`.
    EqualsA,
    /// `u` is the known alias `a_alias`.
    EqualsAlias,
    /// `u` maps to the tested block but is neither `a` nor `a_alias`.
    SameIndex,
    /// `u` maps to a different block.
    Elsewhere,
}

impl UCase {
    /// All four cases.
    pub const ALL: [UCase; 4] = [
        UCase::EqualsA,
        UCase::EqualsAlias,
        UCase::SameIndex,
        UCase::Elsewhere,
    ];

    /// Whether `u` maps to the tested block in this case.
    pub fn maps(self) -> bool {
        !matches!(self, UCase::Elsewhere)
    }
}

/// An address class as seen by the block (all map to the tested block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// The known in-range address `a`.
    A,
    /// The known alias `a_alias`.
    AAlias,
    /// The known out-of-range address `d`.
    D,
    /// The victim's secret address `u`.
    U,
}

/// A lowered memory operation, the common denominator of the base states of
/// Table 1 and the extended states of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A memory access to a target address by some party.
    Access(Actor, Target),
    /// A whole-TLB flush (the only invalidation in the base model).
    FlushAll(Actor),
    /// A targeted invalidation of a single address (Appendix B only).
    InvTarget(Actor, Target),
    /// Unknown activity (`★`).
    Unknown,
}

/// Symbolic contents of the tested block.
///
/// `Unknown(mask)` records partial knowledge: the contents are unknown but
/// provably exclude the symbols set in `mask` (a targeted invalidation of
/// `q` on an unknown block leaves it "unknown, but not `q`").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    Unknown(ExcludeMask),
    Invalid,
    Holds(Sym),
}

/// Bit set of [`Sym`]s a block provably does not contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct ExcludeMask(u8);

impl ExcludeMask {
    const NONE: ExcludeMask = ExcludeMask(0);

    fn with(self, sym: Sym) -> ExcludeMask {
        ExcludeMask(self.0 | 1 << sym as u8)
    }

    fn excludes(self, sym: Sym) -> bool {
        self.0 & (1 << sym as u8) != 0
    }
}

/// What translation the block holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Sym {
    A,
    AAlias,
    D,
    /// The secret translation `u` when it maps to the block but equals
    /// neither `a` nor `a_alias`.
    U,
}

/// Whether `u`'s translation is cached in its own (different) block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UElse {
    Unknown,
    Cached,
    NotCached,
}

/// The symbol the secret address occupies in the tested block for a mapping
/// case.
fn u_sym(case: UCase) -> Sym {
    match case {
        UCase::EqualsA => Sym::A,
        UCase::EqualsAlias => Sym::AAlias,
        UCase::SameIndex => Sym::U,
        UCase::Elsewhere => unreachable!("u does not occupy the tested block when elsewhere"),
    }
}

fn target_sym(t: Target, case: UCase) -> Option<Sym> {
    match t {
        Target::A => Some(Sym::A),
        Target::AAlias => Some(Sym::AAlias),
        Target::D => Some(Sym::D),
        Target::U => case.maps().then(|| u_sym(case)),
    }
}

/// Machine state during symbolic evaluation.
#[derive(Debug, Clone, Copy)]
struct Machine {
    block: Block,
    u_else: UElse,
}

impl Machine {
    fn start() -> Machine {
        // Before step 1 the attacker knows nothing: the block contents and
        // whether `u` is cached elsewhere are both unknown.
        Machine {
            block: Block::Unknown(ExcludeMask::NONE),
            u_else: UElse::Unknown,
        }
    }

    fn apply(&mut self, op: Op, case: UCase) {
        match op {
            Op::Access(_, t) => match target_sym(t, case) {
                Some(sym) => self.block = Block::Holds(sym),
                // Access to `u` while it maps elsewhere: caches `u` there.
                None => self.u_else = UElse::Cached,
            },
            Op::FlushAll(_) => {
                self.block = Block::Invalid;
                self.u_else = UElse::NotCached;
            }
            Op::InvTarget(_, t) => match target_sym(t, case) {
                Some(sym) => match self.block {
                    Block::Holds(h) if h == sym => self.block = Block::Invalid,
                    Block::Unknown(mask) => self.block = Block::Unknown(mask.with(sym)),
                    _ => {}
                },
                None => self.u_else = UElse::NotCached,
            },
            Op::Unknown => {
                self.block = Block::Unknown(ExcludeMask::NONE);
                self.u_else = UElse::Unknown;
            }
        }
    }

    /// The timing of `op` given the current state, or `None` when the
    /// timing depends on unknown state.
    fn observe(&self, op: Op, case: UCase) -> Option<Timing> {
        match op {
            Op::Access(_, t) => match target_sym(t, case) {
                Some(sym) => match self.block {
                    Block::Unknown(mask) if mask.excludes(sym) => Some(Timing::Slow),
                    Block::Unknown(_) => None,
                    Block::Holds(h) if h == sym => Some(Timing::Fast),
                    _ => Some(Timing::Slow),
                },
                None => match self.u_else {
                    UElse::Unknown => None,
                    UElse::Cached => Some(Timing::Fast),
                    UElse::NotCached => Some(Timing::Slow),
                },
            },
            // A whole-TLB flush takes constant time regardless of contents.
            Op::FlushAll(_) => Some(Timing::Fast),
            // Targeted invalidation of a present entry needs an extra cycle
            // to clear it (Appendix B): present = slow, absent = fast.
            Op::InvTarget(_, t) => match target_sym(t, case) {
                Some(sym) => match self.block {
                    Block::Unknown(mask) if mask.excludes(sym) => Some(Timing::Fast),
                    Block::Unknown(_) => None,
                    Block::Holds(h) if h == sym => Some(Timing::Slow),
                    _ => Some(Timing::Fast),
                },
                None => match self.u_else {
                    UElse::Unknown => None,
                    UElse::Cached => Some(Timing::Slow),
                    UElse::NotCached => Some(Timing::Fast),
                },
            },
            Op::Unknown => None,
        }
    }
}

/// Step-3 timings of a pattern under each of the four `u` cases.
///
/// `None` means the timing is not deterministic (it depends on state the
/// attacker cannot know), which disqualifies the pattern per rule (7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcomes {
    /// Timing when `u == a`.
    pub equals_a: Option<Timing>,
    /// Timing when `u == a_alias`.
    pub equals_alias: Option<Timing>,
    /// Timing when `u` maps to the block but is a distinct page.
    pub same_index: Option<Timing>,
    /// Timing when `u` maps to a different block.
    pub elsewhere: Option<Timing>,
}

impl Outcomes {
    /// The outcome for a specific case.
    pub fn get(&self, case: UCase) -> Option<Timing> {
        match case {
            UCase::EqualsA => self.equals_a,
            UCase::EqualsAlias => self.equals_alias,
            UCase::SameIndex => self.same_index,
            UCase::Elsewhere => self.elsewhere,
        }
    }

    /// Whether every case has a deterministic timing.
    pub fn deterministic(&self) -> bool {
        UCase::ALL.iter().all(|&c| self.get(c).is_some())
    }
}

/// Evaluates a lowered operation sequence; the final operation is the
/// observed one.
///
/// # Panics
///
/// Panics if `ops` is empty.
pub fn evaluate(ops: &[Op]) -> Outcomes {
    assert!(!ops.is_empty(), "a pattern needs at least one step");
    let timing_for = |case: UCase| {
        let mut m = Machine::start();
        let (last, prefix) = ops.split_last().expect("non-empty");
        for &op in prefix {
            m.apply(op, case);
        }
        m.observe(*last, case)
    };
    Outcomes {
        equals_a: timing_for(UCase::EqualsA),
        equals_alias: timing_for(UCase::EqualsAlias),
        same_index: timing_for(UCase::SameIndex),
        elsewhere: timing_for(UCase::Elsewhere),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Actor::{Attacker as AT, Victim as VI};
    use Op::*;
    use Target::*;
    use Timing::*;

    #[test]
    fn prime_probe_outcomes() {
        // A_d ~> V_u ~> A_d: slow final access certifies that u maps to the
        // tested set; fast means it does not.
        let o = evaluate(&[Access(AT, D), Access(VI, U), Access(AT, D)]);
        assert_eq!(o.equals_a, Some(Slow));
        assert_eq!(o.equals_alias, Some(Slow));
        assert_eq!(o.same_index, Some(Slow));
        assert_eq!(o.elsewhere, Some(Fast));
    }

    #[test]
    fn internal_collision_outcomes() {
        // A_d ~> V_u ~> V_a: fast final access certifies u == a.
        let o = evaluate(&[Access(AT, D), Access(VI, U), Access(VI, A)]);
        assert_eq!(o.equals_a, Some(Fast));
        assert_eq!(o.equals_alias, Some(Slow));
        assert_eq!(o.same_index, Some(Slow));
        assert_eq!(o.elsewhere, Some(Slow));
    }

    #[test]
    fn evict_time_tracks_u_cached_elsewhere() {
        // V_u ~> A_a ~> V_u: when u maps elsewhere, the final V_u hits in
        // u's own block (cached by step 1).
        let o = evaluate(&[Access(VI, U), Access(AT, A), Access(VI, U)]);
        assert_eq!(o.same_index, Some(Slow));
        assert_eq!(o.elsewhere, Some(Fast));
        // Degenerate u == a: the attacker's own access keeps a/u resident.
        assert_eq!(o.equals_a, Some(Fast));
    }

    #[test]
    fn star_start_makes_final_vu_nondeterministic() {
        // * ~> A_a ~> V_u is rule (7)'s canonical elimination example:
        // whether u is cached elsewhere is unknown.
        let o = evaluate(&[Unknown, Access(AT, A), Access(VI, U)]);
        assert_eq!(o.elsewhere, None);
        assert!(!o.deterministic());
    }

    #[test]
    fn flush_clears_both_the_block_and_u_elsewhere() {
        let o = evaluate(&[Access(VI, U), FlushAll(AT), Access(VI, U)]);
        // After a whole flush the final V_u misses in every case.
        assert_eq!(o.equals_a, Some(Slow));
        assert_eq!(o.same_index, Some(Slow));
        assert_eq!(o.elsewhere, Some(Slow));
    }

    #[test]
    fn targeted_invalidation_observation_is_inverted() {
        // A_a ~> V_u^inv ~> A_a (Flush + Probe from Table 7): invalidating u
        // removed a's entry exactly when u == a, so the probe is slow.
        let o = evaluate(&[Access(AT, A), InvTarget(VI, U), Access(AT, A)]);
        assert_eq!(o.equals_a, Some(Slow));
        assert_eq!(o.equals_alias, Some(Fast));
        assert_eq!(o.same_index, Some(Fast));
        assert_eq!(o.elsewhere, Some(Fast));
    }

    #[test]
    fn invalidation_timing_observed_directly() {
        // V_u ~> A_a ~> V_u^inv (Flush + Time variant): invalidating a
        // present entry is slow.
        let o = evaluate(&[Access(VI, U), Access(AT, A), InvTarget(VI, U)]);
        // u mapped and was evicted by A_a -> absent -> fast.
        assert_eq!(o.same_index, Some(Fast));
        // u elsewhere, still cached -> present -> slow.
        assert_eq!(o.elsewhere, Some(Slow));
    }

    #[test]
    fn whole_flush_observation_is_constant_time() {
        let o = evaluate(&[Access(VI, U), Access(AT, A), FlushAll(AT)]);
        assert_eq!(o.equals_a, o.elsewhere);
        assert_eq!(o.equals_a, Some(Fast));
    }
}
