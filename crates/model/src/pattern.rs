//! Three-step patterns and observable timings.

use std::fmt;

use crate::state::State;

/// The timing an attacker observes for the final memory operation.
///
/// A TLB hit is *fast*; a TLB miss (requiring a page-table walk) is *slow*.
/// For the extended invalidation states of Appendix B, a targeted
/// invalidation of a *present* entry is slow (an extra cycle is needed to
/// clear it) and of an *absent* entry is fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Timing {
    /// TLB hit (or invalidation of an absent entry).
    Fast,
    /// TLB miss (or invalidation of a present entry).
    Slow,
}

impl Timing {
    /// The opposite timing.
    pub fn flip(self) -> Timing {
        match self {
            Timing::Fast => Timing::Slow,
            Timing::Slow => Timing::Fast,
        }
    }
}

impl fmt::Display for Timing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Timing::Fast => "fast",
            Timing::Slow => "slow",
        })
    }
}

/// A three-step pattern: `Step 1 ⇝ Step 2 ⇝ Step 3`.
///
/// Each step names the state a memory operation leaves the tested TLB block
/// in. A pattern becomes a [vulnerability](crate::Vulnerability) when the
/// timing of the step-3 operation reveals information about the victim's
/// secret address `u` (Section 3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pattern {
    /// Step 1: places the block in a known initial state.
    pub s1: State,
    /// Step 2: alters the block state.
    pub s2: State,
    /// Step 3: the timed operation.
    pub s3: State,
}

impl Pattern {
    /// Creates a pattern from its three steps.
    pub fn new(s1: State, s2: State, s3: State) -> Pattern {
        Pattern { s1, s2, s3 }
    }

    /// The three steps in order.
    pub fn steps(self) -> [State; 3] {
        [self.s1, self.s2, self.s3]
    }

    /// Exchanges `a` and `a_alias` in every step (rule 5 of Section 3.3:
    /// patterns differing only in the use of `a` vs. `a_alias` carry the
    /// same information).
    pub fn swap_alias(self) -> Pattern {
        Pattern::new(
            self.s1.swap_alias(),
            self.s2.swap_alias(),
            self.s3.swap_alias(),
        )
    }

    /// The canonical representative of this pattern's alias-equivalence
    /// class.
    ///
    /// The paper's Table 2 writes each vulnerability so that alias states
    /// appear as early as possible (aliases only ever show up in step 1);
    /// a pure renaming `a ↔ a_alias` is not a distinct attack. We therefore
    /// pick, between the pattern and its alias-swapped form, the one whose
    /// alias usage is earliest (and fewest on a tie).
    pub fn canonicalize_alias(self) -> Pattern {
        let swapped = self.swap_alias();
        let key = |p: Pattern| {
            let alias = |s: State| usize::from(s.is_alias());
            // Later-step aliases weigh heavier; tie-break on total count.
            (
                alias(p.s3),
                alias(p.s2),
                alias(p.s1),
                alias(p.s1) + alias(p.s2) + alias(p.s3),
            )
        };
        if key(swapped) < key(self) {
            swapped
        } else {
            self
        }
    }

    /// Whether any step involves the victim's secret address `u`.
    pub fn involves_u(self) -> bool {
        self.steps().iter().any(|s| s.involves_u())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ~> {} ~> {}", self.s1, self.s2, self.s3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Actor::{Attacker as A, Victim as V};
    use crate::state::State::*;

    #[test]
    fn timing_flip_is_an_involution() {
        assert_eq!(Timing::Fast.flip(), Timing::Slow);
        assert_eq!(Timing::Slow.flip().flip(), Timing::Slow);
    }

    #[test]
    fn display_uses_paper_arrow_notation() {
        let p = Pattern::new(KnownD(A), Vu, KnownA(V));
        assert_eq!(p.to_string(), "A_d ~> V_u ~> V_a");
    }

    #[test]
    fn canonicalization_moves_aliases_to_step_one() {
        // A_a ~> V_u ~> V_aalias is the same attack as A_aalias ~> V_u ~> V_a;
        // Table 2 lists the latter.
        let p = Pattern::new(KnownA(A), Vu, KnownAlias(V));
        assert_eq!(
            p.canonicalize_alias(),
            Pattern::new(KnownAlias(A), Vu, KnownA(V))
        );
    }

    #[test]
    fn canonicalization_prefers_plain_a_for_pure_renames() {
        // V_u ~> A_aalias ~> V_u is a pure rename of V_u ~> A_a ~> V_u.
        let p = Pattern::new(Vu, KnownAlias(A), Vu);
        assert_eq!(p.canonicalize_alias(), Pattern::new(Vu, KnownA(A), Vu));
    }

    #[test]
    fn canonicalization_is_idempotent() {
        for s1 in State::ALL {
            for s2 in State::ALL {
                for s3 in State::ALL {
                    let p = Pattern::new(s1, s2, s3).canonicalize_alias();
                    assert_eq!(p, p.canonicalize_alias());
                }
            }
        }
    }

    #[test]
    fn canonical_form_never_loses_information() {
        // The canonical representative is always alias-equivalent to the
        // original: either identical or the full swap.
        for s1 in State::ALL {
            for s2 in State::ALL {
                let p = Pattern::new(s1, s2, Vu);
                let c = p.canonicalize_alias();
                assert!(c == p || c == p.swap_alias());
            }
        }
    }
}
