//! Exhaustive derivation of the 24 TLB timing-based vulnerabilities
//! (Table 2 of the paper).
//!
//! The derivation proceeds exactly as in Section 3.3:
//!
//! 1. enumerate all `10 × 10 × 10 = 1000` three-step combinations;
//! 2. discard those eliminated by the structural rules (1)–(4) and (6)
//!    ([`crate::rules`]);
//! 3. deduplicate alias renamings per rule (5)
//!    ([`Pattern::canonicalize_alias`]);
//! 4. run the symbolic information analysis of rule (7)
//!    ([`crate::semantics`]) and keep only patterns whose step-3 timing
//!    deterministically certifies either an address match (hit-based) or a
//!    set-index match (miss-based).
//!
//! The result is exactly the 24 vulnerability types of Table 2, which the
//! tests in this module assert row for row.

use std::collections::BTreeSet;
use std::fmt;

use crate::pattern::{Pattern, Timing};
use crate::semantics::{evaluate, Op, Outcomes, Target};
use crate::state::{Actor, State};
use crate::strategy::{KnownAttack, Strategy};

/// The four vulnerability macro types of Table 2.
///
/// *Internal* vulnerabilities involve only the victim in steps 2 and 3;
/// the rest are *external*. *Hit*-based vulnerabilities certify an exact
/// address match through a fast (TLB hit) observation; *miss*-based ones
/// certify a set-index match through a slow (TLB miss) observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MacroType {
    /// `IH` — internal interference, hit-based.
    InternalHit,
    /// `IM` — internal interference, miss-based.
    InternalMiss,
    /// `EH` — external interference, hit-based.
    ExternalHit,
    /// `EM` — external interference, miss-based.
    ExternalMiss,
}

impl MacroType {
    /// The two-letter label used in the paper (`IH`, `IM`, `EH`, `EM`).
    pub fn label(self) -> &'static str {
        match self {
            MacroType::InternalHit => "IH",
            MacroType::InternalMiss => "IM",
            MacroType::ExternalHit => "EH",
            MacroType::ExternalMiss => "EM",
        }
    }

    /// Whether the vulnerability is hit-based.
    pub fn hit_based(self) -> bool {
        matches!(self, MacroType::InternalHit | MacroType::ExternalHit)
    }

    /// Whether the vulnerability is internal (victim-only steps 2 and 3).
    pub fn internal(self) -> bool {
        matches!(self, MacroType::InternalHit | MacroType::InternalMiss)
    }

    /// A human-readable description of the macro type.
    pub fn description(self) -> &'static str {
        match self {
            MacroType::InternalHit => "internal interference, hit-based",
            MacroType::InternalMiss => "internal interference, miss-based",
            MacroType::ExternalHit => "external interference, hit-based",
            MacroType::ExternalMiss => "external interference, miss-based",
        }
    }
}

impl fmt::Display for MacroType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One derived vulnerability type — a row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vulnerability {
    /// The three-step pattern.
    pub pattern: Pattern,
    /// The certifying timing of the step-3 operation: the timing observed
    /// when the victim's secret address maps to the tested block/address
    /// (`fast` for hit-based rows, `slow` for miss-based rows in Table 2).
    pub timing: Timing,
    /// Macro type (`IH`/`IM`/`EH`/`EM`).
    pub macro_type: MacroType,
    /// The attack strategy the vulnerability belongs to.
    pub strategy: Strategy,
    /// A previously published attack of this type, if any. `None` marks the
    /// 16 types the paper reports as new.
    pub known_attack: Option<KnownAttack>,
}

impl fmt::Display for Vulnerability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) [{}] {}",
            self.pattern, self.timing, self.macro_type, self.strategy
        )
    }
}

/// Lowers a base state of Table 1 into the symbolic operation it denotes.
pub fn lower(state: State) -> Op {
    match state {
        State::Vu => Op::Access(Actor::Victim, Target::U),
        State::KnownA(x) => Op::Access(x, Target::A),
        State::KnownAlias(x) => Op::Access(x, Target::AAlias),
        State::KnownD(x) => Op::Access(x, Target::D),
        State::Inv(x) => Op::FlushAll(x),
        State::Star => Op::Unknown,
    }
}

/// The result of the rule-(7) information analysis for one pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding {
    /// The certifying timing (see [`Vulnerability::timing`]).
    pub timing: Timing,
    /// Whether the certifying observation is an exact address match.
    pub hit_based: bool,
}

/// Classifies the four-case outcomes of a pattern.
///
/// Returns `None` when the pattern carries no exploitable information:
/// some case is nondeterministic, or all cases time identically.
///
/// The certifying observation is hit-based when the same-index and
/// elsewhere cases agree (so only an exact address match changes the
/// timing), and miss-based when the same-index case differs from the
/// elsewhere case (so the timing reveals the set index of `u`).
pub fn classify_outcomes(o: Outcomes) -> Option<Finding> {
    let ea = o.equals_a?;
    let eal = o.equals_alias?;
    let si = o.same_index?;
    let n = o.elsewhere?;
    if ea == eal && eal == si && si == n {
        return None; // flat: the timing never depends on u.
    }
    if si == n {
        // Only an exact-address case differs: hit-based.
        let certify = if ea != si { ea } else { eal };
        Some(Finding {
            timing: certify,
            hit_based: true,
        })
    } else {
        // The set index of u changes the timing: miss-based.
        Some(Finding {
            timing: si,
            hit_based: false,
        })
    }
}

fn macro_type_of(pattern: Pattern, hit_based: bool) -> MacroType {
    let internal = [pattern.s2, pattern.s3]
        .iter()
        .all(|s| s.actor() == Some(Actor::Victim));
    match (internal, hit_based) {
        (true, true) => MacroType::InternalHit,
        (true, false) => MacroType::InternalMiss,
        (false, true) => MacroType::ExternalHit,
        (false, false) => MacroType::ExternalMiss,
    }
}

fn known_attack_of(strategy: Strategy, macro_type: MacroType) -> Option<KnownAttack> {
    match (strategy, macro_type) {
        // Table 2 note (1): the Double Page Fault attack is an Internal
        // Collision; note (2): TLBleed is a Prime + Probe.
        (Strategy::InternalCollision, MacroType::InternalHit) => Some(KnownAttack::DoublePageFault),
        (Strategy::PrimeProbe, _) => Some(KnownAttack::TlbLeed),
        _ => None,
    }
}

/// Analyzes a single three-step pattern, returning its vulnerability record
/// if it is effective.
///
/// The pattern is first canonicalized per rule (5); a non-canonical pattern
/// yields the vulnerability of its canonical representative.
pub fn analyze(pattern: Pattern) -> Option<Vulnerability> {
    let p = pattern.canonicalize_alias();
    if !crate::rules::survives_structural_rules(p) {
        return None;
    }
    let ops: Vec<Op> = p.steps().iter().map(|&s| lower(s)).collect();
    let finding = classify_outcomes(evaluate(&ops))?;
    let strategy = Strategy::classify(p, finding.hit_based);
    let macro_type = macro_type_of(p, finding.hit_based);
    Some(Vulnerability {
        pattern: p,
        timing: finding.timing,
        macro_type,
        strategy,
        known_attack: known_attack_of(strategy, macro_type),
    })
}

/// Derives all effective TLB timing-based vulnerabilities — the 24 rows of
/// Table 2 — from the full `10^3` enumeration.
///
/// The list is ordered as in the paper: grouped by attack strategy, with a
/// deterministic pattern order within each group.
///
/// ```
/// let vulns = sectlb_model::enumerate_vulnerabilities();
/// assert_eq!(vulns.len(), 24);
/// ```
pub fn enumerate_vulnerabilities() -> Vec<Vulnerability> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for s1 in State::ALL {
        for s2 in State::ALL {
            for s3 in State::ALL {
                if let Some(v) = analyze(Pattern::new(s1, s2, s3)) {
                    if seen.insert(v.pattern) {
                        out.push(v);
                    }
                }
            }
        }
    }
    out.sort_by_key(|v| (v.strategy, table2_rank(v.pattern), v.pattern));
    out
}

/// Number of candidate patterns that survive the structural rules and
/// alias deduplication, before the semantic rule-(7) analysis.
///
/// This corresponds to the intermediate candidate set the paper obtains
/// from its simplification script (the paper reports 34 with a slightly
/// different, more syntactic script; see DESIGN.md).
pub fn structural_candidate_count() -> usize {
    let mut seen = BTreeSet::new();
    for s1 in State::ALL {
        for s2 in State::ALL {
            for s3 in State::ALL {
                let p = Pattern::new(s1, s2, s3).canonicalize_alias();
                if crate::rules::survives_structural_rules(p) {
                    seen.insert(p);
                }
            }
        }
    }
    seen.len()
}

/// Rank of a pattern within its strategy group matching the paper's row
/// order in Table 2 (step-1 order `inv, d, alias` for the hit groups, and
/// the explicit printed order elsewhere). Unknown patterns sort last.
fn table2_rank(p: Pattern) -> usize {
    expected_table2()
        .iter()
        .position(|(ep, _, _)| *ep == p)
        .unwrap_or(usize::MAX)
}

/// The paper's Table 2, transcribed: `(pattern, timing, macro type)` in
/// print order. Used for ordering and by the conformance tests.
pub fn expected_table2() -> Vec<(Pattern, Timing, MacroType)> {
    use Actor::{Attacker as A, Victim as V};
    use MacroType::*;
    use State::*;
    use Timing::*;
    let p = Pattern::new;
    vec![
        // TLB Internal Collision (Double Page Fault attack).
        (p(Inv(A), Vu, KnownA(V)), Fast, InternalHit),
        (p(Inv(V), Vu, KnownA(V)), Fast, InternalHit),
        (p(KnownD(A), Vu, KnownA(V)), Fast, InternalHit),
        (p(KnownD(V), Vu, KnownA(V)), Fast, InternalHit),
        (p(KnownAlias(A), Vu, KnownA(V)), Fast, InternalHit),
        (p(KnownAlias(V), Vu, KnownA(V)), Fast, InternalHit),
        // TLB Flush + Reload.
        (p(Inv(A), Vu, KnownA(A)), Fast, ExternalHit),
        (p(Inv(V), Vu, KnownA(A)), Fast, ExternalHit),
        (p(KnownD(A), Vu, KnownA(A)), Fast, ExternalHit),
        (p(KnownD(V), Vu, KnownA(A)), Fast, ExternalHit),
        (p(KnownAlias(A), Vu, KnownA(A)), Fast, ExternalHit),
        (p(KnownAlias(V), Vu, KnownA(A)), Fast, ExternalHit),
        // TLB Evict + Time.
        (p(Vu, KnownD(A), Vu), Slow, ExternalMiss),
        (p(Vu, KnownA(A), Vu), Slow, ExternalMiss),
        // TLB Prime + Probe (TLBleed attack).
        (p(KnownD(A), Vu, KnownD(A)), Slow, ExternalMiss),
        (p(KnownA(A), Vu, KnownA(A)), Slow, ExternalMiss),
        // TLB version of Bernstein's Attack.
        (p(Vu, KnownA(V), Vu), Slow, InternalMiss),
        (p(Vu, KnownD(V), Vu), Slow, InternalMiss),
        (p(KnownD(V), Vu, KnownD(V)), Slow, InternalMiss),
        (p(KnownA(V), Vu, KnownA(V)), Slow, InternalMiss),
        // TLB Evict + Probe.
        (p(KnownD(V), Vu, KnownD(A)), Slow, ExternalMiss),
        (p(KnownA(V), Vu, KnownA(A)), Slow, ExternalMiss),
        // TLB Prime + Time.
        (p(KnownD(A), Vu, KnownD(V)), Slow, InternalMiss),
        (p(KnownA(A), Vu, KnownA(V)), Slow, InternalMiss),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn derives_exactly_24_vulnerabilities() {
        assert_eq!(enumerate_vulnerabilities().len(), 24);
    }

    #[test]
    fn derived_set_matches_paper_table_2_exactly() {
        let derived: BTreeMap<Pattern, (Timing, MacroType)> = enumerate_vulnerabilities()
            .into_iter()
            .map(|v| (v.pattern, (v.timing, v.macro_type)))
            .collect();
        let expected = expected_table2();
        assert_eq!(derived.len(), expected.len());
        for (p, t, m) in expected {
            let got = derived
                .get(&p)
                .unwrap_or_else(|| panic!("paper row {p} missing from derivation"));
            assert_eq!(got.0, t, "timing mismatch for {p}");
            assert_eq!(got.1, m, "macro type mismatch for {p}");
        }
    }

    #[test]
    fn macro_type_counts_match_paper() {
        let vulns = enumerate_vulnerabilities();
        let count = |m: MacroType| vulns.iter().filter(|v| v.macro_type == m).count();
        assert_eq!(count(MacroType::InternalHit), 6);
        assert_eq!(count(MacroType::ExternalHit), 6);
        assert_eq!(count(MacroType::InternalMiss), 6);
        assert_eq!(count(MacroType::ExternalMiss), 6);
    }

    #[test]
    fn strategy_counts_match_paper() {
        let vulns = enumerate_vulnerabilities();
        let count = |s: Strategy| vulns.iter().filter(|v| v.strategy == s).count();
        assert_eq!(count(Strategy::InternalCollision), 6);
        assert_eq!(count(Strategy::FlushReload), 6);
        assert_eq!(count(Strategy::EvictTime), 2);
        assert_eq!(count(Strategy::PrimeProbe), 2);
        assert_eq!(count(Strategy::Bernstein), 4);
        assert_eq!(count(Strategy::EvictProbe), 2);
        assert_eq!(count(Strategy::PrimeTime), 2);
    }

    #[test]
    fn eight_vulnerabilities_map_to_known_attacks() {
        // 6 Internal Collision rows map to the Double Page Fault attack and
        // 2 Prime + Probe rows map to TLBleed; the other 16 are new.
        let vulns = enumerate_vulnerabilities();
        let known = vulns.iter().filter(|v| v.known_attack.is_some()).count();
        assert_eq!(known, 8);
        assert_eq!(vulns.len() - known, 16);
    }

    #[test]
    fn hit_based_rows_certify_fast_and_miss_based_slow() {
        for v in enumerate_vulnerabilities() {
            if v.macro_type.hit_based() {
                assert_eq!(v.timing, Timing::Fast, "{v}");
            } else {
                assert_eq!(v.timing, Timing::Slow, "{v}");
            }
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        assert_eq!(enumerate_vulnerabilities(), enumerate_vulnerabilities());
    }

    #[test]
    fn structural_candidates_are_a_small_superset() {
        let n = structural_candidate_count();
        assert!(n >= 24, "structural rules must not over-prune, got {n}");
        // The paper reports 34 candidates from its (more syntactic) script;
        // ours should be in the same ballpark and strictly reduced by the
        // semantic rule-(7) analysis.
        assert!(n <= 80, "structural rules prune too little, got {n}");
    }

    #[test]
    fn rule7_example_is_eliminated() {
        use Actor::Attacker as A;
        // * ~> A_a ~> V_u is the paper's explicit rule-(7) example.
        let p = Pattern::new(State::Star, State::KnownA(A), State::Vu);
        assert!(analyze(p).is_none());
    }

    #[test]
    fn non_canonical_aliases_resolve_to_canonical_rows() {
        use Actor::{Attacker as A, Victim as V};
        // A_a ~> V_u ~> V_aalias is the mirror of A_aalias ~> V_u ~> V_a.
        let v = analyze(Pattern::new(
            State::KnownA(A),
            State::Vu,
            State::KnownAlias(V),
        ))
        .expect("mirror of a Table 2 row must be effective");
        assert_eq!(
            v.pattern,
            Pattern::new(State::KnownAlias(A), State::Vu, State::KnownA(V))
        );
    }
}
