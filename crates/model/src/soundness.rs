//! Empirical soundness check of the three-step model (Appendix A).
//!
//! The paper *argues* that any β-step attack reduces to three-step
//! vulnerabilities; this module *checks* it mechanically for β = 4 (all
//! `10⁴` patterns) and for sampled longer patterns: whenever the symbolic
//! semantics says a pattern's final observation is informative, the
//! Appendix A reduction ([`crate::reduce::reduce_pattern`]) must find at
//! least one effective three-step vulnerability inside it.
//!
//! **Finding:** the check holds for every pattern *except one family* —
//! `… ⇝ inv ⇝ (a or a_alias accesses) ⇝ V_u` (fast), a *flush-primed
//! Reload + Time*: the whole-TLB flush guarantees `u` is cached nowhere,
//! so a fast final `V_u` uniquely certifies `u = a`. Algorithm 1's rule 3
//! collapses the adjacent `(inv, known-access)` pair into just the access,
//! reducing the pattern to `★ ⇝ a ⇝ V_u`, which rule 7 then (correctly,
//! for a genuinely unknown prior state) discards as ambiguous — the
//! collapse loses the flush's guarantee. The leaked information (an
//! address match via a hit) is the same capability as the Table 2
//! Flush + Reload rows and the Table 7 Reload + Time rows, so the
//! 24-class taxonomy and the defense results are unaffected; but as a
//! *pattern-level* claim, Appendix A's reduction is incomplete for
//! exactly this family. [`is_flush_reload_time_family`] characterizes it
//! and the tests pin the β = 4 counterexample count (128).

use crate::enumerate::{classify_outcomes, lower};
use crate::reduce::reduce_pattern;
use crate::semantics::{evaluate, Op};
use crate::state::State;

/// Whether a β-step pattern's final observation is informative under the
/// symbolic single-block semantics (the generalization of rule 7 to any
/// length): every `u`-case timing is deterministic and the induced
/// partition certifies an address or index match.
pub fn semantically_effective(steps: &[State]) -> bool {
    if steps.is_empty() {
        return false;
    }
    // A pattern must involve the secret somewhere (rule 2) and must not
    // observe ★ or a whole-TLB flush (rules 1/6 apply to the observation).
    if !steps.iter().any(|s| s.involves_u()) {
        return false;
    }
    let last = *steps.last().expect("non-empty");
    if last == State::Star || last.is_inv() {
        return false;
    }
    let ops: Vec<Op> = steps.iter().map(|&s| lower(s)).collect();
    classify_outcomes(evaluate(&ops)).is_some()
}

/// Whether `steps` belongs to the flush-primed Reload + Time family that
/// Algorithm 1 is known to miss (see the module docs): a whole-TLB flush,
/// followed only by attacker-known non-flush accesses including at least
/// one to `a`/`a_alias`, ending in the timed `V_u`.
pub fn is_flush_reload_time_family(steps: &[State]) -> bool {
    let Some((&last, prefix)) = steps.split_last() else {
        return false;
    };
    if last != State::Vu {
        return false;
    }
    let Some(flush_pos) = prefix.iter().rposition(|s| s.is_inv()) else {
        return false;
    };
    let between = &prefix[flush_pos + 1..];
    !between.is_empty()
        && between.iter().all(|s| s.known_to_attacker() && !s.is_inv())
        && between
            .iter()
            .any(|s| matches!(s, State::KnownA(_) | State::KnownAlias(_)))
}

/// Checks the soundness direction for one pattern: *informative ⇒ the
/// reduction finds a vulnerability*. Returns `None` when the pattern is
/// consistent **or** belongs to the known flush-primed Reload + Time
/// family, or `Some(pattern)` as a counterexample.
pub fn soundness_counterexample(steps: &[State]) -> Option<Vec<State>> {
    if semantically_effective(steps)
        && reduce_pattern(steps).is_empty()
        && !is_flush_reload_time_family(steps)
    {
        return Some(steps.to_vec());
    }
    None
}

/// All β-step members of the known-missed family (for the pinning tests
/// and the documentation of the finding).
pub fn flush_reload_time_members(beta: usize) -> Vec<Vec<State>> {
    all_patterns(beta)
        .into_iter()
        .filter(|p| {
            semantically_effective(p)
                && reduce_pattern(p).is_empty()
                && is_flush_reload_time_family(p)
        })
        .collect()
}

fn all_patterns(beta: usize) -> Vec<Vec<State>> {
    let mut out = Vec::new();
    let n = State::ALL.len();
    let total = n.pow(beta as u32);
    for mut code in 0..total {
        let mut steps = Vec::with_capacity(beta);
        for _ in 0..beta {
            steps.push(State::ALL[code % n]);
            code /= n;
        }
        out.push(steps);
    }
    out
}

/// Exhaustively checks all β-step patterns for a given β; returns every
/// counterexample found (expected: none, for any β).
pub fn check_all_patterns(beta: usize) -> Vec<Vec<State>> {
    assert!(beta >= 1, "patterns have at least one step");
    let mut counterexamples = Vec::new();
    let mut indices = vec![0usize; beta];
    let n = State::ALL.len();
    loop {
        let steps: Vec<State> = indices.iter().map(|&i| State::ALL[i]).collect();
        if let Some(cx) = soundness_counterexample(&steps) {
            counterexamples.push(cx);
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            indices[pos] += 1;
            if indices[pos] < n {
                break;
            }
            indices[pos] = 0;
            pos += 1;
            if pos == beta {
                return counterexamples;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Actor::{Attacker as A, Victim as V};
    use crate::state::State::*;
    use proptest::prelude::*;

    #[test]
    fn three_step_effectiveness_agrees_with_table_2() {
        // For β = 3 the semantic notion coincides with the Table 2
        // derivation (modulo alias canonicalization, which only renames).
        let table = crate::enumerate_vulnerabilities();
        for v in &table {
            let steps = v.pattern.steps();
            assert!(
                semantically_effective(&steps),
                "{} must be semantically effective",
                v.pattern
            );
        }
    }

    #[test]
    fn no_counterexamples_among_all_four_step_patterns() {
        // The paper's Appendix A claim, checked exhaustively for β = 4
        // (10,000 patterns), modulo the documented flush-primed
        // Reload + Time family.
        let cx = check_all_patterns(4);
        assert!(
            cx.is_empty(),
            "soundness violated by {} patterns outside the known family, e.g. {:?}",
            cx.len(),
            cx.first()
        );
    }

    #[test]
    fn the_missed_family_is_exactly_pinned_at_beta_4() {
        // The finding: 128 four-step patterns are semantically effective
        // yet reduced to nothing, all of the flush-primed Reload + Time
        // shape.
        let members = flush_reload_time_members(4);
        assert_eq!(members.len(), 128, "family size changed");
        for m in &members {
            assert_eq!(*m.last().expect("non-empty"), Vu);
            assert!(m.iter().any(|s| s.is_inv()));
        }
        // A canonical member, spelled out.
        assert!(is_flush_reload_time_family(&[
            Inv(A),
            KnownA(A),
            KnownA(A),
            Vu
        ]));
        // And the capability it leaks is an address match via a hit —
        // the same class as Flush + Reload — per the semantic analysis.
        use crate::enumerate::classify_outcomes;
        use crate::semantics::evaluate;
        let ops: Vec<_> = [Inv(A), KnownA(A), Vu]
            .iter()
            .map(|&s| lower_state(s))
            .collect();
        let finding = classify_outcomes(evaluate(&ops)).expect("informative");
        assert!(finding.hit_based);
    }

    fn lower_state(s: State) -> crate::semantics::Op {
        crate::enumerate::lower(s)
    }

    #[test]
    fn no_counterexamples_among_all_two_step_patterns() {
        // β = 2: the paper argues none are effective; reduction agreeing
        // vacuously satisfies soundness, but also check none are
        // semantically effective at all (matching Appendix A's argument).
        for s1 in State::ALL {
            for s2 in State::ALL {
                let steps = [s1, s2];
                assert!(soundness_counterexample(&steps).is_none());
            }
        }
    }

    #[test]
    fn known_compound_patterns_reduce_and_stay_effective() {
        // A Prime + Probe with a redundant re-prime in the middle.
        let steps = [KnownD(A), KnownD(A), Vu, KnownD(A)];
        assert!(semantically_effective(&steps));
        assert!(!reduce_pattern(&steps).is_empty());
        // A collision attack behind a flush boundary.
        let steps = [Vu, KnownA(A), Inv(V), Vu, KnownA(V)];
        assert!(semantically_effective(&steps));
        assert!(!reduce_pattern(&steps).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn no_counterexamples_among_sampled_long_patterns(
            indices in proptest::collection::vec(0usize..10, 5..9),
        ) {
            let steps: Vec<State> =
                indices.iter().map(|&i| State::ALL[i]).collect();
            prop_assert!(soundness_counterexample(&steps).is_none(),
                "counterexample: {steps:?}");
        }
    }
}
