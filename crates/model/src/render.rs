//! Plain-text rendering of the derived vulnerability tables.
//!
//! These renderers back the `table2` and `table7` binaries of the
//! `sectlb-bench` crate, which regenerate the corresponding tables of the
//! paper.

use std::fmt::Write as _;

use crate::enumerate::{enumerate_vulnerabilities, Vulnerability};
use crate::extended::{enumerate_extended_only, ExtState, ExtVulnerability};
use crate::state::State;

/// A one-line description of a base block state, as in Table 1.
pub fn describe_state(state: State) -> String {
    let actor = |s: State| match s.actor() {
        Some(a) => a.to_string(),
        None => "nobody".to_owned(),
    };
    match state {
        State::Vu => "holds the victim's secret translation u (within the known range x; the attacker wants to learn its page or index)"
            .to_owned(),
        State::KnownA(_) => format!(
            "holds the known in-range address a, placed by the {}",
            actor(state)
        ),
        State::KnownAlias(_) => format!(
            "holds a_alias — in range, same page index as a — placed by the {}",
            actor(state)
        ),
        State::Inv(_) => format!("invalidated by a whole-TLB flush from the {}", actor(state)),
        State::KnownD(_) => format!(
            "holds the known out-of-range address d, placed by the {}",
            actor(state)
        ),
        State::Star => "unknown contents; the attacker has no knowledge of the block".to_owned(),
    }
}

/// Renders Table 1: the ten possible states of a single TLB block.
///
/// ```
/// let t = sectlb_model::render::render_table1();
/// assert!(t.contains("V_u"));
/// ```
pub fn render_table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: the 10 possible states of a single TLB block");
    for s in State::ALL {
        let _ = writeln!(out, "  {:<10} {}", s.to_string(), describe_state(s));
    }
    out
}

/// Renders Table 6: the seven additional targeted-invalidation states of
/// the extended model.
pub fn render_table6() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6: the 7 targeted-invalidation states of the extended model"
    );
    for s in ExtState::all() {
        if !s.is_targeted_inv() {
            continue;
        }
        let who = s
            .actor()
            .map(|a| a.to_string())
            .unwrap_or_else(|| "nobody".to_owned());
        let what = match s {
            ExtState::UInv => "the victim's secret translation u",
            ExtState::KnownAInv(_) => "the known in-range address a",
            ExtState::KnownAliasInv(_) => "the alias a_alias",
            ExtState::KnownDInv(_) => "the known out-of-range address d",
            ExtState::Base(_) => unreachable!("filtered above"),
        };
        let _ = writeln!(
            out,
            "  {:<14} {what} was invalidated (targeted) by the {who}",
            s.to_string()
        );
    }
    out
}

/// Renders the derived Table 2 (all 24 base vulnerability types) as an
/// aligned plain-text table.
///
/// ```
/// let table = sectlb_model::render::render_table2();
/// assert!(table.contains("TLB Prime + Probe"));
/// ```
pub fn render_table2() -> String {
    render_rows(
        "Table 2: all timing-based TLB vulnerabilities (derived)",
        &enumerate_vulnerabilities()
            .iter()
            .map(row_of_vulnerability)
            .collect::<Vec<_>>(),
    )
}

/// Renders the derived extended vulnerability list (Table 7 additions).
pub fn render_table7() -> String {
    render_rows(
        "Table 7: additional vulnerabilities under targeted TLB invalidation (derived)",
        &enumerate_extended_only()
            .iter()
            .map(row_of_ext)
            .collect::<Vec<_>>(),
    )
}

struct Row {
    strategy: String,
    s1: String,
    s2: String,
    s3: String,
    macro_type: &'static str,
    attack: String,
}

fn row_of_vulnerability(v: &Vulnerability) -> Row {
    Row {
        strategy: v.strategy.paper_name().to_owned(),
        s1: v.pattern.s1.to_string(),
        s2: v.pattern.s2.to_string(),
        s3: format!("{} ({})", v.pattern.s3, v.timing),
        macro_type: v.macro_type.label(),
        attack: v
            .known_attack
            .map(|a| a.name().to_owned())
            .unwrap_or_else(|| "new".to_owned()),
    }
}

fn row_of_ext(v: &ExtVulnerability) -> Row {
    Row {
        strategy: v.strategy_name.clone(),
        s1: v.pattern.s1.to_string(),
        s2: v.pattern.s2.to_string(),
        s3: format!("{} ({})", v.pattern.s3, v.timing),
        macro_type: v.macro_type.label(),
        attack: "new".to_owned(),
    }
}

fn render_rows(title: &str, rows: &[Row]) -> String {
    let headers = [
        "Attack Strategy",
        "Step 1",
        "Step 2",
        "Step 3",
        "Macro",
        "Attack",
    ];
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        let cells = [
            r.strategy.as_str(),
            r.s1.as_str(),
            r.s2.as_str(),
            r.s3.as_str(),
            r.macro_type,
            r.attack.as_str(),
        ];
        for (w, c) in widths.iter_mut().zip(cells) {
            *w = (*w).max(c.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let line = |out: &mut String| {
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
    };
    line(&mut out);
    let write_row = |out: &mut String, cells: [&str; 6]| {
        let _ = write!(out, "|");
        for (w, c) in widths.iter().zip(cells) {
            let _ = write!(out, " {c:<w$} |");
        }
        let _ = writeln!(out);
    };
    write_row(&mut out, headers);
    line(&mut out);
    let mut last_strategy = String::new();
    for r in rows {
        let strategy_cell = if r.strategy == last_strategy {
            ""
        } else {
            last_strategy = r.strategy.clone();
            r.strategy.as_str()
        };
        write_row(
            &mut out,
            [strategy_cell, &r.s1, &r.s2, &r.s3, r.macro_type, &r.attack],
        );
    }
    line(&mut out);
    let _ = writeln!(out, "{} vulnerability types", rows.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_24_rows_and_strategies() {
        let t = render_table2();
        assert!(t.contains("24 vulnerability types"));
        for s in crate::strategy::Strategy::ALL {
            assert!(t.contains(s.paper_name()), "missing {s}");
        }
        assert!(t.contains("TLBleed attack"));
        assert!(t.contains("Double Page Fault attack"));
    }

    #[test]
    fn table7_renders_extended_rows() {
        let t = render_table7();
        assert!(t.contains("TLB Flush + Probe"));
        assert!(t.contains("V_u^inv"));
    }

    #[test]
    fn table1_lists_all_ten_states() {
        let t = render_table1();
        for s in crate::state::State::ALL {
            assert!(t.contains(&s.to_string()), "missing {s}");
        }
        assert!(t.contains("secret translation"));
    }

    #[test]
    fn table6_lists_the_seven_invalidation_states() {
        let t = render_table6();
        assert_eq!(t.matches("invalidated (targeted)").count(), 7);
        assert!(t.contains("V_u^inv"));
    }

    #[test]
    fn strategy_column_deduplicates_repeats() {
        let t = render_table2();
        let occurrences = t.matches("TLB Prime + Probe").count();
        // Prime + Probe appears once as a group label (and possibly once in
        // the Prime + Time label check — exact substring differs).
        assert_eq!(occurrences, 1);
    }
}
