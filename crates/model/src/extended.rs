//! Appendix B: additional vulnerabilities under targeted TLB invalidation.
//!
//! The base model only permits whole-TLB flushes (rule 6 of Section 3.3).
//! If an ISA lets the attacker or victim invalidate a *specific* address —
//! e.g. through `mprotect()`-induced shootdowns — seven more block states
//! become possible (Table 6 of the paper), and invalidation itself may have
//! observable timing (fast when the entry is already absent, slow when a
//! valid entry must be cleared). This module enumerates the resulting
//! extended vulnerability list (Table 7).

use std::collections::BTreeSet;
use std::fmt;

use crate::enumerate::{classify_outcomes, lower, MacroType};
use crate::pattern::Timing;
use crate::semantics::{evaluate, Op, Target};
use crate::state::{Actor, State};

/// A state of the tested block in the extended model: one of the ten base
/// states of Table 1 or one of the seven targeted-invalidation states of
/// Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExtState {
    /// A base state from Table 1.
    Base(State),
    /// `V_u^inv`: the victim invalidated its secret translation `u`.
    UInv,
    /// `A_a^inv` / `V_a^inv`: targeted invalidation of the known address `a`.
    KnownAInv(Actor),
    /// `A_aalias^inv` / `V_aalias^inv`: targeted invalidation of the alias.
    KnownAliasInv(Actor),
    /// `A_d^inv` / `V_d^inv`: targeted invalidation of the known
    /// out-of-range address `d`.
    KnownDInv(Actor),
}

impl ExtState {
    /// All seventeen extended-model states.
    pub fn all() -> Vec<ExtState> {
        let mut v: Vec<ExtState> = State::ALL.iter().map(|&s| ExtState::Base(s)).collect();
        v.push(ExtState::UInv);
        for actor in [Actor::Attacker, Actor::Victim] {
            v.push(ExtState::KnownAInv(actor));
            v.push(ExtState::KnownAliasInv(actor));
            v.push(ExtState::KnownDInv(actor));
        }
        v
    }

    /// Whether the state involves the secret address `u`.
    pub fn involves_u(self) -> bool {
        match self {
            ExtState::Base(s) => s.involves_u(),
            ExtState::UInv => true,
            _ => false,
        }
    }

    /// Whether the resulting block state is known to the attacker.
    pub fn known_to_attacker(self) -> bool {
        match self {
            ExtState::Base(s) => s.known_to_attacker(),
            ExtState::UInv => false,
            _ => true,
        }
    }

    /// Whether this is a targeted-invalidation state (Table 6).
    pub fn is_targeted_inv(self) -> bool {
        !matches!(self, ExtState::Base(_))
    }

    /// The actor performing the operation, if any.
    pub fn actor(self) -> Option<Actor> {
        match self {
            ExtState::Base(s) => s.actor(),
            ExtState::UInv => Some(Actor::Victim),
            ExtState::KnownAInv(x) | ExtState::KnownAliasInv(x) | ExtState::KnownDInv(x) => Some(x),
        }
    }

    /// Exchanges `a` and `a_alias` (rule 5 deduplication).
    pub fn swap_alias(self) -> ExtState {
        match self {
            ExtState::Base(s) => ExtState::Base(s.swap_alias()),
            ExtState::KnownAInv(x) => ExtState::KnownAliasInv(x),
            ExtState::KnownAliasInv(x) => ExtState::KnownAInv(x),
            other => other,
        }
    }

    fn is_alias(self) -> bool {
        match self {
            ExtState::Base(s) => s.is_alias(),
            ExtState::KnownAliasInv(_) => true,
            _ => false,
        }
    }

    /// Lowers the state to its symbolic operation.
    pub fn lower(self) -> Op {
        match self {
            ExtState::Base(s) => lower(s),
            ExtState::UInv => Op::InvTarget(Actor::Victim, Target::U),
            ExtState::KnownAInv(x) => Op::InvTarget(x, Target::A),
            ExtState::KnownAliasInv(x) => Op::InvTarget(x, Target::AAlias),
            ExtState::KnownDInv(x) => Op::InvTarget(x, Target::D),
        }
    }
}

impl fmt::Display for ExtState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtState::Base(s) => write!(f, "{s}"),
            ExtState::UInv => f.write_str("V_u^inv"),
            ExtState::KnownAInv(x) => write!(f, "{}_a^inv", x.letter()),
            ExtState::KnownAliasInv(x) => write!(f, "{}_aalias^inv", x.letter()),
            ExtState::KnownDInv(x) => write!(f, "{}_d^inv", x.letter()),
        }
    }
}

/// A three-step pattern over extended states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtPattern {
    /// Step 1.
    pub s1: ExtState,
    /// Step 2.
    pub s2: ExtState,
    /// Step 3 (the timed operation).
    pub s3: ExtState,
}

impl ExtPattern {
    /// Creates an extended pattern.
    pub fn new(s1: ExtState, s2: ExtState, s3: ExtState) -> ExtPattern {
        ExtPattern { s1, s2, s3 }
    }

    /// The steps in order.
    pub fn steps(self) -> [ExtState; 3] {
        [self.s1, self.s2, self.s3]
    }

    fn swap_alias(self) -> ExtPattern {
        ExtPattern::new(
            self.s1.swap_alias(),
            self.s2.swap_alias(),
            self.s3.swap_alias(),
        )
    }

    /// Canonical alias representative, mirroring
    /// [`Pattern::canonicalize_alias`](crate::Pattern::canonicalize_alias).
    pub fn canonicalize_alias(self) -> ExtPattern {
        let swapped = self.swap_alias();
        let key = |p: ExtPattern| {
            let alias = |s: ExtState| usize::from(s.is_alias());
            (
                alias(p.s3),
                alias(p.s2),
                alias(p.s1),
                alias(p.s1) + alias(p.s2) + alias(p.s3),
            )
        };
        if key(swapped) < key(self) {
            swapped
        } else {
            self
        }
    }
}

impl fmt::Display for ExtPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ~> {} ~> {}", self.s1, self.s2, self.s3)
    }
}

/// A vulnerability of the extended model — a row of Table 7 (or, when the
/// pattern uses only base states, of Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtVulnerability {
    /// The three-step pattern.
    pub pattern: ExtPattern,
    /// The certifying timing.
    pub timing: Timing,
    /// The macro type.
    pub macro_type: MacroType,
    /// The paper-style strategy name (e.g. "TLB Flush + Probe").
    pub strategy_name: String,
}

impl fmt::Display for ExtVulnerability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) [{}] {}",
            self.pattern,
            self.timing,
            self.macro_type.label(),
            self.strategy_name
        )
    }
}

fn survives_structural_rules(p: ExtPattern) -> bool {
    let star = ExtState::Base(State::Star);
    // Rule 1: no ★ in steps 2 or 3.
    if p.s2 == star || p.s3 == star {
        return false;
    }
    // Rule 2: some step involves u.
    if !p.steps().iter().any(|s| s.involves_u()) {
        return false;
    }
    // Rule 3: ★ immediately followed by a u-operation.
    if p.s1 == star && p.s2.involves_u() {
        return false;
    }
    // Rule 4: adjacent repeats or adjacent attacker-known steps.
    let adjacent = [(p.s1, p.s2), (p.s2, p.s3)];
    if adjacent
        .iter()
        .any(|&(x, y)| x == y || (x.known_to_attacker() && y.known_to_attacker()))
    {
        return false;
    }
    // Rule 6 (modified): whole-TLB flushes still cannot appear in steps 2
    // or 3; targeted invalidations can (they are the point of Appendix B).
    let whole_flush = |s: ExtState| matches!(s, ExtState::Base(State::Inv(_)));
    if whole_flush(p.s2) || whole_flush(p.s3) {
        return false;
    }
    true
}

fn strategy_name(p: ExtPattern, hit_based: bool) -> String {
    let inv3 = p.s3.is_targeted_inv();
    let base = base_strategy_name(p, hit_based);
    if inv3 {
        if base == "TLB Flush + Reload" {
            // The paper names the invalidation-probed Flush + Reload family
            // "TLB Flush + Flush", after the cache attack of the same shape.
            return "TLB Flush + Flush".to_owned();
        }
        return format!("{base} Invalidation");
    }
    base.to_owned()
}

fn base_strategy_name(p: ExtPattern, hit_based: bool) -> &'static str {
    let actor = |s: ExtState| s.actor().expect("no * in surviving patterns");
    // Step-2 invalidations define the Flush + Probe / Flush + Time families.
    if p.s2 == ExtState::UInv {
        return "TLB Flush + Probe";
    }
    if p.s2.is_targeted_inv() {
        return "TLB Flush + Time";
    }
    // A step-1 invalidation of u means the victim must *reload* u.
    if p.s1 == ExtState::UInv {
        return "TLB Reload + Time";
    }
    if hit_based {
        return match actor(p.s3) {
            Actor::Victim => "TLB Internal Collision",
            Actor::Attacker => "TLB Flush + Reload",
        };
    }
    let (a1, a2, a3) = (actor(p.s1), actor(p.s2), actor(p.s3));
    let u1 = p.s1.involves_u();
    let u3 = p.s3.involves_u();
    if u1 && u3 && a2 == Actor::Attacker {
        "TLB Evict + Time"
    } else if a1 == Actor::Victim && a2 == Actor::Victim && a3 == Actor::Victim {
        "TLB version of Bernstein's Attack"
    } else if a1 == Actor::Attacker && a3 == Actor::Attacker {
        "TLB Prime + Probe"
    } else if a1 == Actor::Victim && a3 == Actor::Attacker {
        "TLB Evict + Probe"
    } else {
        "TLB Prime + Time"
    }
}

fn macro_type_of(p: ExtPattern, hit_based: bool) -> MacroType {
    let internal = [p.s2, p.s3]
        .iter()
        .all(|s| s.actor() == Some(Actor::Victim));
    match (internal, hit_based) {
        (true, true) => MacroType::InternalHit,
        (true, false) => MacroType::InternalMiss,
        (false, true) => MacroType::ExternalHit,
        (false, false) => MacroType::ExternalMiss,
    }
}

/// Analyzes a single extended pattern.
pub fn analyze_extended(pattern: ExtPattern) -> Option<ExtVulnerability> {
    let p = pattern.canonicalize_alias();
    if !survives_structural_rules(p) {
        return None;
    }
    let ops: Vec<Op> = p.steps().iter().map(|s| s.lower()).collect();
    let finding = classify_outcomes(evaluate(&ops))?;
    Some(ExtVulnerability {
        pattern: p,
        timing: finding.timing,
        macro_type: macro_type_of(p, finding.hit_based),
        strategy_name: strategy_name(p, finding.hit_based),
    })
}

/// Enumerates all effective vulnerabilities of the extended model
/// (`17^3 = 4913` patterns).
///
/// The result contains both the base Table 2 rows and the additional
/// Table 7 rows; use [`enumerate_extended_only`] for just the additions.
pub fn enumerate_extended() -> Vec<ExtVulnerability> {
    let states = ExtState::all();
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for &s1 in &states {
        for &s2 in &states {
            for &s3 in &states {
                if let Some(v) = analyze_extended(ExtPattern::new(s1, s2, s3)) {
                    if seen.insert(v.pattern) {
                        out.push(v);
                    }
                }
            }
        }
    }
    out.sort_by_key(|v| (v.strategy_name.clone(), v.pattern));
    out
}

/// Enumerates only the vulnerabilities that require targeted invalidation —
/// the additional rows of Table 7.
pub fn enumerate_extended_only() -> Vec<ExtVulnerability> {
    enumerate_extended()
        .into_iter()
        .filter(|v| v.pattern.steps().iter().any(|s| s.is_targeted_inv()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Actor::{Attacker as A, Victim as V};

    fn base(s: State) -> ExtState {
        ExtState::Base(s)
    }

    #[test]
    fn there_are_seventeen_extended_states() {
        assert_eq!(ExtState::all().len(), 17);
    }

    #[test]
    fn base_rows_survive_in_extended_enumeration() {
        // The extended model strictly extends the base one: all 24 base
        // vulnerabilities reappear.
        let all = enumerate_extended();
        let base_only: Vec<_> = all
            .iter()
            .filter(|v| !v.pattern.steps().iter().any(|s| s.is_targeted_inv()))
            .collect();
        assert_eq!(base_only.len(), 24);
    }

    #[test]
    fn flush_probe_row_from_table_7() {
        // A_a ~> V_u^inv ~> A_a (slow), labeled EH in the paper.
        let v = analyze_extended(ExtPattern::new(
            base(State::KnownA(A)),
            ExtState::UInv,
            base(State::KnownA(A)),
        ))
        .expect("Flush + Probe must be effective");
        assert_eq!(v.timing, Timing::Slow);
        assert_eq!(v.strategy_name, "TLB Flush + Probe");
        assert_eq!(v.macro_type, MacroType::ExternalHit);
    }

    #[test]
    fn flush_time_row_from_table_7() {
        // V_u ~> A_a^inv ~> V_u (slow), labeled EH in the paper.
        let v = analyze_extended(ExtPattern::new(
            base(State::Vu),
            ExtState::KnownAInv(A),
            base(State::Vu),
        ))
        .expect("Flush + Time must be effective");
        assert_eq!(v.strategy_name, "TLB Flush + Time");
        assert_eq!(v.timing, Timing::Slow);
    }

    #[test]
    fn reload_time_row_from_table_7() {
        // V_u^inv ~> A_a ~> V_u (fast), labeled EH in the paper.
        let v = analyze_extended(ExtPattern::new(
            ExtState::UInv,
            base(State::KnownA(A)),
            base(State::Vu),
        ))
        .expect("Reload + Time must be effective");
        assert_eq!(v.strategy_name, "TLB Reload + Time");
    }

    #[test]
    fn targeted_inv_step_one_internal_collision() {
        // A_a^inv ~> V_u ~> V_a (fast): invalidating a, then a victim hit
        // on a certifies u == a (Table 7's first row).
        let v = analyze_extended(ExtPattern::new(
            ExtState::KnownAInv(A),
            base(State::Vu),
            base(State::KnownA(V)),
        ))
        .expect("invalidation-primed collision must be effective");
        assert_eq!(v.timing, Timing::Fast);
        assert_eq!(v.macro_type, MacroType::InternalHit);
        assert_eq!(v.strategy_name, "TLB Internal Collision");
    }

    #[test]
    fn flush_flush_family_exists() {
        // Final-step invalidation with observable timing (the paper's
        // TLB Flush + Flush discussion).
        let additions = enumerate_extended_only();
        assert!(
            additions
                .iter()
                .any(|v| v.strategy_name == "TLB Flush + Flush"),
            "expected a Flush + Flush row among {} additions",
            additions.len()
        );
    }

    #[test]
    fn extended_additions_are_substantial() {
        // Table 7 lists on the order of 50 additional vulnerability types.
        let n = enumerate_extended_only().len();
        assert!(n >= 30, "only {n} additional extended vulnerabilities");
        assert!(
            n <= 90,
            "{n} additional extended vulnerabilities is too many"
        );
    }

    #[test]
    fn whole_flush_still_banned_late() {
        assert!(analyze_extended(ExtPattern::new(
            base(State::Vu),
            base(State::Inv(A)),
            base(State::Vu),
        ))
        .is_none());
    }

    #[test]
    fn extended_enumeration_is_deterministic() {
        assert_eq!(enumerate_extended(), enumerate_extended());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ExtState::UInv.to_string(), "V_u^inv");
        assert_eq!(ExtState::KnownAInv(A).to_string(), "A_a^inv");
        assert_eq!(ExtState::KnownDInv(V).to_string(), "V_d^inv");
    }
}
