//! Structural reduction rules (1)–(6) of Section 3.3.
//!
//! These rules discard three-step combinations that can never lead to an
//! attack, before the semantic analysis of rule (7) runs. Each rule is a
//! named predicate returning `true` when the pattern must be *eliminated*.
//! Rule (5) — alias deduplication — is handled separately by
//! [`Pattern::canonicalize_alias`](crate::Pattern::canonicalize_alias), and
//! rule (7) by [`crate::semantics`].

use crate::pattern::Pattern;
use crate::state::State;

/// Rule (1): `★` is not possible in *Step 2* or *Step 3*.
///
/// An unknown state there destroys the information the attacker is
/// gathering.
pub fn star_in_late_step(p: Pattern) -> bool {
    p.s2 == State::Star || p.s3 == State::Star
}

/// Rule (2): some step must be `V_u`.
///
/// Without the unknown secret address there is nothing to learn.
pub fn no_secret_access(p: Pattern) -> bool {
    !p.involves_u()
}

/// Rule (3): `★` immediately followed by `V_u` cannot lead to an attack —
/// the block must be in a known state before `V_u` is placed into it.
pub fn star_before_vu(p: Pattern) -> bool {
    (p.s1 == State::Star && p.s2 == State::Vu) || (p.s2 == State::Star && p.s3 == State::Vu)
}

/// Rule (4): two adjacent steps repeating, or two adjacent steps both
/// leaving the block in an attacker-known state, add no information; such
/// patterns reduce to shorter ones already covered.
pub fn adjacent_redundant(p: Pattern) -> bool {
    let adjacent = [(p.s1, p.s2), (p.s2, p.s3)];
    adjacent
        .iter()
        .any(|&(x, y)| x == y || (x.known_to_attacker() && y.known_to_attacker()))
}

/// Rule (6): an *inv* state cannot appear in *Step 2* or *Step 3*: the base
/// model only has whole-TLB flushes, which are not available to user code
/// mid-attack (see Appendix B for targeted invalidation extensions).
pub fn inv_in_late_step(p: Pattern) -> bool {
    p.s2.is_inv() || p.s3.is_inv()
}

/// Applies rules (1), (2), (3), (4) and (6); returns `true` when the
/// pattern survives all of them.
pub fn survives_structural_rules(p: Pattern) -> bool {
    !star_in_late_step(p)
        && !no_secret_access(p)
        && !star_before_vu(p)
        && !adjacent_redundant(p)
        && !inv_in_late_step(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Actor::{Attacker as A, Victim as V};
    use crate::state::State::*;

    #[test]
    fn rule_one_rejects_late_stars() {
        assert!(star_in_late_step(Pattern::new(Vu, Star, KnownA(A))));
        assert!(star_in_late_step(Pattern::new(Vu, KnownA(A), Star)));
        assert!(!star_in_late_step(Pattern::new(Star, Vu, KnownA(A))));
    }

    #[test]
    fn rule_two_rejects_patterns_without_vu() {
        assert!(no_secret_access(Pattern::new(
            KnownA(A),
            KnownD(V),
            KnownA(A)
        )));
        assert!(!no_secret_access(Pattern::new(KnownA(A), Vu, KnownA(A))));
    }

    #[test]
    fn rule_three_rejects_star_then_vu() {
        assert!(star_before_vu(Pattern::new(Star, Vu, KnownA(A))));
        assert!(!star_before_vu(Pattern::new(Star, KnownA(A), Vu)));
    }

    #[test]
    fn rule_four_rejects_repeats_and_known_known() {
        // Repeating adjacent steps.
        assert!(adjacent_redundant(Pattern::new(Vu, Vu, KnownA(A))));
        // Both adjacent steps known to the attacker.
        assert!(adjacent_redundant(Pattern::new(KnownD(A), KnownA(V), Vu)));
        assert!(adjacent_redundant(Pattern::new(Vu, KnownA(A), KnownD(V))));
        // Alternating known/unknown survives.
        assert!(!adjacent_redundant(Pattern::new(KnownD(A), Vu, KnownD(A))));
    }

    #[test]
    fn rule_six_rejects_late_invalidations() {
        assert!(inv_in_late_step(Pattern::new(Vu, Inv(A), Vu)));
        assert!(inv_in_late_step(Pattern::new(KnownA(A), Vu, Inv(V))));
        assert!(!inv_in_late_step(Pattern::new(Inv(A), Vu, KnownA(V))));
    }

    #[test]
    fn table_two_rows_survive_structural_rules() {
        // Spot-check representatives of every strategy in Table 2.
        let rows = [
            Pattern::new(Inv(A), Vu, KnownA(V)),        // Internal Collision
            Pattern::new(KnownD(A), Vu, KnownA(A)),     // Flush + Reload
            Pattern::new(Vu, KnownD(A), Vu),            // Evict + Time
            Pattern::new(KnownD(A), Vu, KnownD(A)),     // Prime + Probe
            Pattern::new(Vu, KnownA(V), Vu),            // Bernstein
            Pattern::new(KnownD(V), Vu, KnownD(A)),     // Evict + Probe
            Pattern::new(KnownA(A), Vu, KnownA(V)),     // Prime + Time
            Pattern::new(KnownAlias(V), Vu, KnownA(V)), // alias collision
        ];
        for p in rows {
            assert!(survives_structural_rules(p), "{p} should survive");
        }
    }
}
