//! Attack-strategy naming for derived vulnerabilities (Table 2).
//!
//! The paper groups the 24 vulnerability types into seven *attack
//! strategies* — common names for sets of vulnerabilities exploited in a
//! similar manner, many borrowed from the cache side-channel literature.

use std::fmt;

use crate::pattern::Pattern;
use crate::state::{Actor, State};

/// One of the seven attack strategies of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// `TLB Internal Collision` — hit-based, final step by the victim.
    /// The Double Page Fault attack is of this kind.
    InternalCollision,
    /// `TLB Flush + Reload` — hit-based, final step by the attacker.
    FlushReload,
    /// `TLB Evict + Time` — the attacker evicts between two victim accesses
    /// of the secret address and the victim's re-access is timed.
    EvictTime,
    /// `TLB Prime + Probe` — the attacker primes a set, the victim runs,
    /// and the attacker probes its own entries. TLBleed is of this kind.
    PrimeProbe,
    /// `TLB version of Bernstein's Attack` — purely internal contention:
    /// all three steps are victim operations.
    Bernstein,
    /// `TLB Evict + Probe` — the victim evicts, the attacker probes.
    EvictProbe,
    /// `TLB Prime + Time` — the attacker primes, the victim's own re-access
    /// is timed.
    PrimeTime,
}

impl Strategy {
    /// All strategies in the row order of Table 2.
    pub const ALL: [Strategy; 7] = [
        Strategy::InternalCollision,
        Strategy::FlushReload,
        Strategy::EvictTime,
        Strategy::PrimeProbe,
        Strategy::Bernstein,
        Strategy::EvictProbe,
        Strategy::PrimeTime,
    ];

    /// The strategy name used in the paper's Table 2.
    pub fn paper_name(self) -> &'static str {
        match self {
            Strategy::InternalCollision => "TLB Internal Collision",
            Strategy::FlushReload => "TLB Flush + Reload",
            Strategy::EvictTime => "TLB Evict + Time",
            Strategy::PrimeProbe => "TLB Prime + Probe",
            Strategy::Bernstein => "TLB version of Bernstein's Attack",
            Strategy::EvictProbe => "TLB Evict + Probe",
            Strategy::PrimeTime => "TLB Prime + Time",
        }
    }

    /// Classifies a vulnerability pattern into its strategy.
    ///
    /// `hit_based` is the result of the semantic analysis: `true` when the
    /// certifying observation is a TLB hit on an exact address match.
    pub fn classify(pattern: Pattern, hit_based: bool) -> Strategy {
        let actor = |s: State| s.actor().expect("no * in surviving patterns");
        if hit_based {
            return match actor(pattern.s3) {
                Actor::Victim => Strategy::InternalCollision,
                Actor::Attacker => Strategy::FlushReload,
            };
        }
        let (a1, a2, a3) = (actor(pattern.s1), actor(pattern.s2), actor(pattern.s3));
        if pattern.s1 == State::Vu && pattern.s3 == State::Vu && a2 == Actor::Attacker {
            Strategy::EvictTime
        } else if a1 == Actor::Victim && a2 == Actor::Victim && a3 == Actor::Victim {
            Strategy::Bernstein
        } else if a1 == Actor::Attacker && a3 == Actor::Attacker {
            Strategy::PrimeProbe
        } else if a1 == Actor::Victim && a3 == Actor::Attacker {
            Strategy::EvictProbe
        } else {
            Strategy::PrimeTime
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// A previously published attack corresponding to a vulnerability type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KnownAttack {
    /// Hund, Willems, Holz — *Practical Timing Side Channel Attacks Against
    /// Kernel Space ASLR* (IEEE S&P 2013); the Double Page Fault attack.
    DoublePageFault,
    /// Gras, Razavi, Bos, Giuffrida — *Translation Leak-aside Buffer*
    /// (USENIX Security 2018); the TLBleed attack.
    TlbLeed,
}

impl KnownAttack {
    /// The attack's common name.
    pub fn name(self) -> &'static str {
        match self {
            KnownAttack::DoublePageFault => "Double Page Fault attack",
            KnownAttack::TlbLeed => "TLBleed attack",
        }
    }
}

impl fmt::Display for KnownAttack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Actor::{Attacker as A, Victim as V};
    use crate::state::State::*;

    #[test]
    fn hit_based_split_by_final_actor() {
        let ic = Pattern::new(KnownD(A), Vu, KnownA(V));
        assert_eq!(Strategy::classify(ic, true), Strategy::InternalCollision);
        let fr = Pattern::new(KnownD(A), Vu, KnownA(A));
        assert_eq!(Strategy::classify(fr, true), Strategy::FlushReload);
    }

    #[test]
    fn miss_based_strategies() {
        assert_eq!(
            Strategy::classify(Pattern::new(Vu, KnownA(A), Vu), false),
            Strategy::EvictTime
        );
        assert_eq!(
            Strategy::classify(Pattern::new(KnownD(A), Vu, KnownD(A)), false),
            Strategy::PrimeProbe
        );
        assert_eq!(
            Strategy::classify(Pattern::new(Vu, KnownD(V), Vu), false),
            Strategy::Bernstein
        );
        assert_eq!(
            Strategy::classify(Pattern::new(KnownD(V), Vu, KnownD(A)), false),
            Strategy::EvictProbe
        );
        assert_eq!(
            Strategy::classify(Pattern::new(KnownA(A), Vu, KnownA(V)), false),
            Strategy::PrimeTime
        );
    }
}
