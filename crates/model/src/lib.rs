//! Three-step model of TLB timing-based vulnerabilities.
//!
//! This crate reproduces Section 3 and Appendices A and B of *Secure TLBs*
//! (Deng, Xiong, Szefer — ISCA 2019). The paper models every timing-based
//! TLB attack as a sequence of exactly three steps, each step being one of
//! ten possible states of a single TLB block (Table 1 of the paper). All
//! `10 × 10 × 10 = 1000` combinations are enumerated and reduced — first by
//! the structural rules of Section 3.3, then by a symbolic information
//! analysis implementing the paper's rule (7) — down to the 24 effective
//! vulnerability types of Table 2.
//!
//! # Quickstart
//!
//! ```
//! use sectlb_model::{enumerate_vulnerabilities, MacroType};
//!
//! let vulns = enumerate_vulnerabilities();
//! assert_eq!(vulns.len(), 24);
//!
//! // 6 internal hit-based and 6 external hit-based rows,
//! // exactly as in the paper's Table 2.
//! let ih = vulns.iter().filter(|v| v.macro_type == MacroType::InternalHit).count();
//! assert_eq!(ih, 6);
//! ```
//!
//! # Modules
//!
//! - [`state`] — the ten block states of Table 1 (and the extended
//!   invalidation states of Table 6).
//! - [`pattern`] — three-step patterns and observed timings.
//! - [`rules`] — the structural reduction rules (1)–(6) of Section 3.3.
//! - [`semantics`] — the symbolic single-block evaluator behind rule (7).
//! - [`enumerate`] — the full derivation of Table 2.
//! - [`strategy`] — attack-strategy naming (Prime+Probe, Flush+Reload, …).
//! - [`reduce`] — Appendix A: reduction of β-step patterns (Algorithm 1).
//! - [`soundness`] — empirical check of the Appendix A claim: every
//!   semantically informative β-step pattern reduces to a Table 2 row.
//! - [`extended`] — Appendix B: targeted-invalidation states and Table 7.
//! - [`render`] — plain-text rendering of the derived tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;
pub mod extended;
pub mod pattern;
pub mod reduce;
pub mod render;
pub mod rules;
pub mod semantics;
pub mod soundness;
pub mod state;
pub mod strategy;

pub use enumerate::{enumerate_vulnerabilities, MacroType, Vulnerability};
pub use pattern::{Pattern, Timing};
pub use state::{Actor, State};
pub use strategy::Strategy;
