#!/usr/bin/env bash
# Regenerates every table, figure, and extension study of the Secure TLBs
# reproduction into results/. Takes ~10 minutes (fig7 dominates).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --offline

# $1 is the output name; the rest is the command. Capture the name before
# shifting — the redirection expands after the shift.
run() {
  local name=$1
  shift
  echo ">>> $name"
  "$@" > "results/$name.txt" 2>&1
}

mkdir -p results
run table2           ./target/release/table2
run table4           ./target/release/table4 --trials 500
run table5           ./target/release/table5
run table7           ./target/release/table7
run attack           ./target/release/attack_success --seeds 5
run mitigations      ./target/release/mitigations --trials 300
run table7_eval      ./target/release/table7_eval --trials 500
run ablation_rf      ./target/release/ablation_rf --trials 300
run ablation_sp_ways ./target/release/ablation_sp_ways --trials 200
run itlb_attack      ./target/release/itlb_attack
run l2_hierarchy     ./target/release/l2_hierarchy
run software_defenses ./target/release/software_defenses
run covert_channel   ./target/release/covert_channel
run fig7             ./target/release/fig7

echo "done; outputs in results/"
