#!/usr/bin/env bash
# Core hot-path throughput sweep.
#
# Runs the table4 security campaign — the hot-path workload the SoA/
# packed-LRU/enum-dispatch overhaul optimizes — across a ladder of
# worker counts, prints the throughput at each rung, and records the
# aggregated metrics of the `--workers auto` run as BENCH_core.json:
# the committed baseline the perf-floor test in
# tests/performance_end_to_end.rs checks against.
#
# Usage: scripts/scalability.sh [TRIALS] (default 500)
set -euo pipefail
cd "$(dirname "$0")/.."

TRIALS="${1:-500}"
OUT="${OUT:-BENCH_core.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo build --release --workspace --bins --offline

throughput() {
  grep -o '"throughput_pairs_per_s": [0-9.]*' "$1" | awk '{print $2}'
}

echo "table4 --trials $TRIALS"
echo "workers  pairs/s"
for w in 1 2 4 auto; do
  ./target/release/table4 --trials "$TRIALS" --workers "$w" \
    --metrics "$TMP/core_$w.json" > /dev/null
  printf '%-8s %s\n' "$w" "$(throughput "$TMP/core_$w.json")"
done

cp "$TMP/core_auto.json" "$OUT"
echo "baseline written to $OUT ($(throughput "$OUT") pairs/s)"
