//! # secure-tlbs
//!
//! A reproduction of *Secure TLBs* (Deng, Xiong, Szefer — ISCA 2019) as a
//! Rust library: the three-step TLB vulnerability model, the Static
//! Partition (SP) and Random Fill (RF) secure TLB designs, a cycle-level
//! simulation substrate, micro security benchmarks with channel-capacity
//! analysis, and the paper's performance-evaluation workloads.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names. See the repository README for an architecture overview and
//! DESIGN.md for the paper-to-module map.
//!
//! Security campaigns run on the deterministic parallel trial engine in
//! [`secbench::parallel`]: every trial's RFE seed is a pure function of
//! its coordinates (base seed, vulnerability, design, placement, trial
//! index), so sharding the campaign across any number of workers — set
//! [`secbench::run::TrialSettings::workers`] or pass `--workers` to the
//! bench binaries — produces bitwise-identical results to a serial run.
//!
//! ```
//! use secure_tlbs::model::enumerate_vulnerabilities;
//!
//! // The paper's Table 2: 24 timing-based TLB vulnerability types.
//! assert_eq!(enumerate_vulnerabilities().len(), 24);
//! ```

#![forbid(unsafe_code)]

pub use sectlb_area as area;
pub use sectlb_model as model;
pub use sectlb_secbench as secbench;
pub use sectlb_sim as sim;
pub use sectlb_tlb as tlb;
pub use sectlb_workloads as workloads;
