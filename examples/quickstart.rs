//! Quickstart: build a simulated machine with each TLB design, run a few
//! memory accesses, and inspect the performance counters.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use secure_tlbs::sim::cpu::Instr;
use secure_tlbs::sim::machine::{MachineBuilder, TlbDesign};
use secure_tlbs::tlb::types::{SecureRegion, Vpn};
use secure_tlbs::tlb::TlbConfig;

fn main() {
    for design in TlbDesign::ALL {
        // A 32-entry, 4-way TLB — the paper's baseline geometry.
        let mut machine = MachineBuilder::new()
            .design(design)
            .tlb_config(TlbConfig::sa(32, 4).expect("valid geometry"))
            .build();

        // Create a process and map eight pages at virtual page 0x10.
        let process = machine.os_mut().create_process();
        machine
            .os_mut()
            .map_region(process, Vpn(0x10), 8)
            .expect("mapping fresh pages succeeds");

        // For the secure designs, protect a 3-page region: the OS programs
        // the victim-ASID and sbase/ssize registers (a no-op on SA).
        machine
            .protect_victim(process, SecureRegion::new(Vpn(0x10), 3))
            .expect("protection setup succeeds");

        // Touch each page twice: the first pass misses, the second hits —
        // except that the RF TLB never fills secure pages directly, so its
        // second pass may still miss (that is the defense).
        let mut program = vec![Instr::SetAsid(process)];
        for round in 0..2 {
            for page in 0..8u64 {
                program.push(Instr::Load((0x10 + page) << 12));
                let _ = round;
            }
        }
        machine.run(&program);

        let stats = machine.tlb_stats();
        println!(
            "{} TLB: {} accesses, {} hits, {} misses, {} random fills; IPC {:.3}",
            design,
            stats.accesses,
            stats.hits,
            stats.misses,
            stats.random_fills,
            machine.ipc().expect("instructions retired"),
        );
    }
    println!("\nThe RF TLB misses more here because accesses to the secure");
    println!("region are served through its no-fill buffer while a *random*");
    println!("secure translation is cached instead (Figure 3 of the paper).");
}
