//! Explore the three-step model interactively: analyze a pattern given on
//! the command line, or reduce a longer multi-step pattern to its
//! effective three-step vulnerabilities (Appendix A).
//!
//! ```sh
//! cargo run --example three_step_explorer A_d V_u A_d
//! cargo run --example three_step_explorer V_u A_a V_u
//! cargo run --example three_step_explorer A_d V_u A_d '*' V_d V_u V_a
//! ```

use secure_tlbs::model::reduce::reduce_pattern;
use secure_tlbs::model::state::{Actor, State};
use secure_tlbs::model::{enumerate_vulnerabilities, Pattern};

fn parse_state(s: &str) -> Option<State> {
    let actor = |c: char| match c {
        'A' => Some(Actor::Attacker),
        'V' => Some(Actor::Victim),
        _ => None,
    };
    match s {
        "*" | "star" => Some(State::Star),
        "V_u" => Some(State::Vu),
        _ => {
            let (who, what) = s.split_once('_')?;
            let a = actor(who.chars().next()?)?;
            match what {
                "a" => Some(State::KnownA(a)),
                "aalias" | "alias" => Some(State::KnownAlias(a)),
                "d" => Some(State::KnownD(a)),
                "inv" => Some(State::Inv(a)),
                _ => None,
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        println!("usage: three_step_explorer <state> <state> <state> [more states...]");
        println!("states: V_u, A_a, V_a, A_aalias, V_aalias, A_d, V_d, A_inv, V_inv, *");
        println!("\nwith no arguments, here is the full Table 2 derivation:\n");
        for v in enumerate_vulnerabilities() {
            println!("  {v}");
        }
        return;
    }
    let states: Vec<State> = args
        .iter()
        .map(|a| {
            parse_state(a).unwrap_or_else(|| {
                eprintln!("cannot parse state {a:?}");
                std::process::exit(2);
            })
        })
        .collect();

    if states.len() == 3 {
        let p = Pattern::new(states[0], states[1], states[2]);
        match secure_tlbs::model::enumerate::analyze(p) {
            Some(v) => {
                println!("{p} is an effective vulnerability:");
                println!("  strategy:   {}", v.strategy);
                println!(
                    "  macro type: {} ({})",
                    v.macro_type.description(),
                    v.macro_type.label()
                );
                println!("  certifying timing: {} in step 3", v.timing);
                match v.known_attack {
                    Some(k) => println!("  known attack: {k}"),
                    None => println!("  known attack: none — new in the paper"),
                }
            }
            None => println!("{p} is NOT an effective vulnerability (eliminated by the rules)"),
        }
    } else {
        println!(
            "reducing the {}-step pattern per Appendix A Algorithm 1:",
            states.len()
        );
        let found = reduce_pattern(&states);
        if found.is_empty() {
            println!("  no effective three-step vulnerability inside");
        }
        for v in found {
            println!("  contains {v}");
        }
    }
}
