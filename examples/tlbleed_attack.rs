//! End-to-end TLBleed-style attack: recover RSA secret-exponent bits via
//! TLB Prime + Probe, against each TLB design.
//!
//! The victim decrypts with a genuine RSA key using the Figure 5
//! square-and-multiply structure; the attacker primes the TLB set of the
//! exponent-dependent page before every iteration and probes it after.
//!
//! ```sh
//! cargo run --release --example tlbleed_attack
//! ```

use secure_tlbs::sim::machine::TlbDesign;
use secure_tlbs::workloads::attack::{prime_probe_attack, AttackSettings};
use secure_tlbs::workloads::rsa::RsaKey;

fn main() {
    let key = RsaKey::demo_128();
    let bits = key.secret_bits().len();
    println!("victim: RSA decryption, {bits}-bit secret exponent");
    println!("attack: TLB Prime + Probe on the pointer-block page, one");
    println!("        prime/probe round per square-and-multiply iteration\n");

    for design in TlbDesign::ALL {
        let outcome = prime_probe_attack(&key, design, &AttackSettings::default());
        let verdict = if outcome.accuracy() > 0.9 {
            "KEY LEAKED"
        } else {
            "attack defeated"
        };
        println!("  {outcome}   -> {verdict}");
    }

    println!("\nWith protections disabled (no secure region programmed):");
    let unprotected = AttackSettings {
        protections_enabled: false,
        ..AttackSettings::default()
    };
    let rf = prime_probe_attack(&key, TlbDesign::Rf, &unprotected);
    println!("  {rf}   -> an unprogrammed RF TLB behaves like the SA TLB");
}
