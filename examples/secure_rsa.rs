//! SecRSA: the performance cost of protecting the RSA victim on each TLB
//! design (a slice of the paper's Figure 7).
//!
//! Runs the RSA decryption workload alone and co-scheduled with the
//! povray-like benchmark, with and without the secure-region protections,
//! and prints IPC and MPKI.
//!
//! ```sh
//! cargo run --release --example secure_rsa [runs]
//! ```

use sectlb_bench_shim::perf;
use secure_tlbs::sim::machine::TlbDesign;
use secure_tlbs::tlb::TlbConfig;

// The perf machinery lives in the bench crate; the facade re-exports the
// workloads it builds on. For this example we reconstruct the cells
// directly from the public API.
mod sectlb_bench_shim {
    pub mod perf {
        use secure_tlbs::sim::cpu::Instr;
        use secure_tlbs::sim::machine::{MachineBuilder, TlbDesign};
        use secure_tlbs::sim::sched::{run_round_robin, Program};
        use secure_tlbs::tlb::types::Vpn;
        use secure_tlbs::tlb::TlbConfig;
        use secure_tlbs::workloads::rsa::{decryption_program, encrypt, RsaKey, RsaLayout};
        use secure_tlbs::workloads::spec_like::SpecBenchmark;

        /// Runs RSA (optionally protected, optionally co-run) and returns
        /// `(ipc, mpki)`.
        pub fn measure(
            design: TlbDesign,
            config: TlbConfig,
            secure: bool,
            co_run: Option<SpecBenchmark>,
            runs: usize,
        ) -> (f64, f64) {
            let key = RsaKey::demo_128();
            let layout = RsaLayout::new();
            let mut m = MachineBuilder::new()
                .design(design)
                .tlb_config(config)
                .build();
            let rsa = m.os_mut().create_process();
            for page in layout.all_pages() {
                m.os_mut().map_page(rsa, page).expect("fresh machine");
            }
            if secure {
                m.protect_victim(rsa, layout.secure_region())
                    .expect("fresh machine");
            }
            let ciphertext = encrypt(&key, &[0xfeedu64]);
            let rsa_prog = decryption_program(&key, &ciphertext, layout, runs);
            match co_run {
                None => {
                    m.exec(Instr::SetAsid(rsa));
                    m.run(&rsa_prog);
                }
                Some(bench) => {
                    let spec = m.os_mut().create_process();
                    let base = Vpn(0x10_000);
                    m.os_mut()
                        .map_region(spec, base, bench.footprint_pages())
                        .expect("fresh machine");
                    let spec_prog = bench.trace(base, rsa_prog.len() / 3, 7);
                    run_round_robin(
                        &mut m,
                        &[Program::new(rsa, rsa_prog), Program::new(spec, spec_prog)],
                        200,
                    );
                }
            }
            (m.ipc().expect("ran"), m.mpki().expect("ran"))
        }
    }
}

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let config = TlbConfig::sa(32, 4).expect("valid");
    let povray = Some(secure_tlbs::workloads::spec_like::SpecBenchmark::Povray);

    println!("SecRSA cost on the 32-entry 4-way TLB ({runs} decryptions):\n");
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "SA IPC", "SA MPKI", "SP IPC", "SP MPKI", "RF IPC", "RF MPKI"
    );
    for (label, secure, co) in [
        ("RSA", false, None),
        ("SecRSA", true, None),
        ("RSA+povray", false, povray),
        ("SecRSA+povray", true, povray),
    ] {
        print!("{label:<24}");
        for design in TlbDesign::ALL {
            let (ipc, mpki) = perf::measure(design, config, secure, co, runs);
            print!(" {ipc:>8.3} {mpki:>8.2}");
        }
        println!();
    }
    println!("\nExpected shape (paper Sections 6.3-6.5): SP pays ~3x the SA MPKI");
    println!("under co-run pressure; RF stays within ~10% of SA while defending");
    println!("all 24 vulnerability types.");
}
